//! The Sampled Temporal Memory Streaming prefetcher (STMS) — the paper's
//! contribution.
//!
//! STMS keeps all predictor meta-data in main memory:
//!
//! * per-core circular **history buffers** log correct-path off-chip misses
//!   and prefetched hits, with writes packed twelve entries per 64-byte
//!   block ([`crate::OffChipHistory`]);
//! * a shared, bucketized **hash index table** maps a miss address to a
//!   pointer into some core's history buffer; one bucket is one 64-byte
//!   block, so a lookup costs a single memory access
//!   ([`crate::HashIndexTable`]);
//! * **probabilistic update** applies only a sampled subset of index-table
//!   updates ([`crate::UpdateSampler`]), trading a small coverage loss for a
//!   large reduction in meta-data write traffic;
//! * the split history/index organization lets a single lookup stream an
//!   arbitrarily long miss sequence, amortizing the two off-chip round trips
//!   (index read + history read) over tens to hundreds of prefetches;
//! * **end-of-stream annotations** stop streaming past the last
//!   successfully-prefetched block of a previously-followed stream (§4.5).

use crate::config::StmsConfig;
use crate::history::OffChipHistory;
use crate::index::{HashIndexTable, HistoryPointer};
use crate::sampler::UpdateSampler;
use stms_mem::{DramModel, Prefetcher, StreamChunk};
use stms_types::{CoreId, Cycle, LineAddr};

/// Counters describing STMS behaviour, exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmsStats {
    /// Trigger events (off-chip read misses presented to the predictor).
    pub triggers: u64,
    /// Triggers whose index lookup found a history pointer.
    pub index_hits: u64,
    /// Addresses recorded into history buffers.
    pub recorded: u64,
    /// Index updates actually performed (after sampling).
    pub updates_performed: u64,
    /// Index updates skipped by probabilistic sampling.
    pub updates_skipped: u64,
    /// History blocks read while following streams.
    pub history_blocks_read: u64,
    /// End-of-stream annotations written.
    pub end_marks: u64,
}

/// Cursor of an in-progress stream follow.
#[derive(Debug, Clone, Copy)]
struct StreamCursor {
    /// Core whose history buffer the stream lives in.
    src_core: CoreId,
    /// Position of the first streamed (not trigger) entry.
    start_pos: u64,
    /// Next position to read from.
    next_pos: u64,
    /// Prefetched hits consumed so far on this stream.
    hits: u64,
    /// Whether the history read hit an end-of-stream mark or ran out.
    exhausted: bool,
}

/// The STMS prefetcher. Implements [`stms_mem::Prefetcher`] and plugs into
/// the `stms-mem` simulation engine.
///
/// # Example
///
/// ```
/// use stms_core::{Stms, StmsConfig};
/// use stms_mem::{DramModel, Prefetcher, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut stms = Stms::new(StmsConfig { cores: 1, sampling_probability: 1.0, ..StmsConfig::scaled_default() });
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let core = CoreId::new(0);
/// // First occurrence of the stream A B C D.
/// for l in [1u64, 2, 3, 4] {
///     stms.record(core, LineAddr::new(l), false, Cycle::ZERO, &mut dram);
/// }
/// // On the recurrence of A, the index lookup plus one history-block read
/// // yields the successors B C D. The recently-updated bucket is still in
/// // the on-chip bucket buffer, so only the history read pays a memory
/// // round trip here; a cold lookup would pay two.
/// let chunk = stms.on_trigger(core, LineAddr::new(1), Cycle::ZERO, &mut dram).unwrap();
/// assert_eq!(chunk.addresses, vec![LineAddr::new(2), LineAddr::new(3), LineAddr::new(4)]);
/// assert!(chunk.ready_at.raw() >= 180);
/// ```
#[derive(Debug)]
pub struct Stms {
    cfg: StmsConfig,
    history: OffChipHistory,
    index: HashIndexTable,
    sampler: UpdateSampler,
    cursors: Vec<Option<StreamCursor>>,
    stats: StmsStats,
}

impl Stms {
    /// Creates an STMS prefetcher from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`StmsConfig::validate`].
    pub fn new(cfg: StmsConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid STMS configuration: {e}");
        }
        Stms {
            history: OffChipHistory::new(
                cfg.cores,
                cfg.history_entries_per_core,
                cfg.entries_per_history_block,
            ),
            index: HashIndexTable::new(
                cfg.index_buckets,
                cfg.entries_per_bucket,
                cfg.bucket_buffer_blocks,
            ),
            sampler: UpdateSampler::new(cfg.sampling_probability, cfg.sampling_seed),
            cursors: vec![None; cfg.cores],
            stats: StmsStats::default(),
            cfg,
        }
    }

    /// The configuration this prefetcher was built with.
    pub fn config(&self) -> &StmsConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> StmsStats {
        self.stats
    }

    /// Index-table statistics (lookups, buffer hits, write-backs).
    pub fn index_stats(&self) -> crate::index::IndexStats {
        self.index.stats()
    }

    /// Fraction of potential index updates that were actually performed.
    pub fn observed_sampling_rate(&self) -> f64 {
        self.sampler.observed_rate()
    }

    /// Ends the stream currently followed on behalf of `core`, writing an
    /// end-of-stream annotation after the last contiguously-prefetched
    /// address (§4.5).
    fn close_stream(&mut self, core: CoreId) {
        if let Some(cursor) = self.cursors[core.index()].take() {
            if cursor.hits > 0 {
                self.history
                    .mark_stream_end(cursor.src_core, cursor.start_pos + cursor.hits);
                self.stats.end_marks += 1;
            }
        }
    }

    /// Reads the next history block for `core`'s cursor, advancing it.
    fn read_next_block(&mut self, core: CoreId, now: Cycle, dram: &mut DramModel) -> StreamChunk {
        let Some(mut cursor) = self.cursors[core.index()] else {
            return StreamChunk::empty(now);
        };
        if cursor.exhausted {
            return StreamChunk::empty(now);
        }
        let block = self
            .history
            .read_block(cursor.src_core, cursor.next_pos, now, dram);
        self.stats.history_blocks_read += 1;
        cursor.next_pos += block.addresses.len() as u64;
        cursor.exhausted = block.hit_end_mark || block.addresses.is_empty();
        self.cursors[core.index()] = Some(cursor);
        StreamChunk {
            addresses: block.addresses,
            ready_at: block.ready_at,
        }
    }
}

impl Prefetcher for Stms {
    fn name(&self) -> &'static str {
        "stms"
    }

    fn on_trigger(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        self.stats.triggers += 1;
        // A genuinely new trigger means the previously-followed stream (if
        // any) has ended: annotate its end before starting a new follow.
        self.close_stream(core);

        // Round trip 1: index-table bucket.
        let (pointer, index_ready) = self.index.lookup(line, now, dram);
        let pointer = pointer?;
        self.stats.index_hits += 1;

        // Round trip 2: first history-buffer block, dependent on the index
        // read having completed.
        let start_pos = pointer.position + 1;
        let block = self
            .history
            .read_block(pointer.core, start_pos, index_ready, dram);
        self.stats.history_blocks_read += 1;
        if block.addresses.is_empty() {
            return None;
        }
        self.cursors[core.index()] = Some(StreamCursor {
            src_core: pointer.core,
            start_pos,
            next_pos: start_pos + block.addresses.len() as u64,
            hits: 0,
            exhausted: block.hit_end_mark,
        });
        Some(StreamChunk {
            addresses: block.addresses,
            ready_at: block.ready_at,
        })
    }

    fn next_chunk(&mut self, core: CoreId, now: Cycle, dram: &mut DramModel) -> StreamChunk {
        self.read_next_block(core, now, dram)
    }

    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        prefetched: bool,
        now: Cycle,
        dram: &mut DramModel,
    ) {
        self.stats.recorded += 1;
        let position = self.history.append(core, line, now, dram);
        if self.sampler.should_update() {
            self.index
                .update(line, HistoryPointer { core, position }, now, dram);
            self.stats.updates_performed += 1;
        } else {
            self.stats.updates_skipped += 1;
        }
        if prefetched {
            if let Some(cursor) = &mut self.cursors[core.index()] {
                cursor.hits += 1;
            }
        }
    }

    fn finish(&mut self, now: Cycle, dram: &mut DramModel) {
        self.history.flush(now, dram);
        self.index.flush(now, dram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn small_cfg() -> StmsConfig {
        StmsConfig {
            cores: 2,
            history_entries_per_core: 4096,
            entries_per_history_block: 4,
            index_buckets: 256,
            entries_per_bucket: 12,
            bucket_buffer_blocks: 16,
            sampling_probability: 1.0,
            sampling_seed: 7,
        }
    }

    fn record_seq(stms: &mut Stms, core: u16, lines: &[u64], dram: &mut DramModel) {
        for &l in lines {
            stms.record(
                CoreId::new(core),
                LineAddr::new(l),
                false,
                Cycle::ZERO,
                dram,
            );
        }
    }

    #[test]
    fn lookup_takes_two_round_trips_and_returns_one_block() {
        let mut d = dram();
        // Disable the bucket buffer so the index lookup cannot be satisfied
        // on chip: the two serialized memory round trips become visible.
        let mut stms = Stms::new(StmsConfig {
            bucket_buffer_blocks: 0,
            ..small_cfg()
        });
        record_seq(&mut stms, 0, &[10, 20, 30, 40, 50, 60], &mut d);
        let chunk = stms
            .on_trigger(CoreId::new(0), LineAddr::new(10), Cycle::ZERO, &mut d)
            .expect("index hit");
        // One block of 4 entries starting after the trigger.
        assert_eq!(
            chunk.addresses,
            vec![
                LineAddr::new(20),
                LineAddr::new(30),
                LineAddr::new(40),
                LineAddr::new(50)
            ]
        );
        assert!(
            chunk.ready_at.raw() >= 2 * 180,
            "index read + history read are serialized: {}",
            chunk.ready_at
        );
        assert_eq!(stms.stats().index_hits, 1);
    }

    #[test]
    fn next_chunk_continues_the_stream() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(
            &mut stms,
            0,
            &(0..20u64).map(|i| 100 + i).collect::<Vec<_>>(),
            &mut d,
        );
        let first = stms
            .on_trigger(CoreId::new(0), LineAddr::new(100), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(first.addresses.len(), 4);
        let second = stms.next_chunk(CoreId::new(0), Cycle::ZERO, &mut d);
        assert_eq!(second.addresses[0], LineAddr::new(105));
        // Each continuation costs exactly one more history-block read.
        assert_eq!(stms.stats().history_blocks_read, 2);
    }

    #[test]
    fn unknown_trigger_returns_none() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(&mut stms, 0, &[1, 2, 3], &mut d);
        assert!(stms
            .on_trigger(CoreId::new(0), LineAddr::new(999), Cycle::ZERO, &mut d)
            .is_none());
        assert_eq!(stms.stats().triggers, 1);
        assert_eq!(stms.stats().index_hits, 0);
    }

    #[test]
    fn cross_core_stream_is_found_through_shared_index() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(&mut stms, 0, &[7, 8, 9, 10], &mut d);
        let chunk = stms
            .on_trigger(CoreId::new(1), LineAddr::new(7), Cycle::ZERO, &mut d)
            .expect("stream recorded by core 0 is visible to core 1");
        assert_eq!(chunk.addresses[0], LineAddr::new(8));
    }

    #[test]
    fn sampling_skips_most_updates_at_low_probability() {
        let mut d = dram();
        let mut cfg = small_cfg();
        cfg.sampling_probability = 0.125;
        let mut stms = Stms::new(cfg);
        record_seq(&mut stms, 0, &(0..4000u64).collect::<Vec<_>>(), &mut d);
        let s = stms.stats();
        assert_eq!(s.updates_performed + s.updates_skipped, 4000);
        let rate = s.updates_performed as f64 / 4000.0;
        assert!((rate - 0.125).abs() < 0.04, "observed sampling rate {rate}");
        assert!((stms.observed_sampling_rate() - rate).abs() < 1e-12);
        // Update traffic is roughly proportional to the sampling rate.
        assert!(d.traffic().meta_update < 4000 * 64);
    }

    #[test]
    fn full_sampling_updates_every_record() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(&mut stms, 0, &[1, 2, 3, 4, 5], &mut d);
        assert_eq!(stms.stats().updates_performed, 5);
        assert_eq!(stms.stats().updates_skipped, 0);
    }

    #[test]
    fn record_traffic_is_packed() {
        let mut d = dram();
        let mut cfg = small_cfg();
        cfg.sampling_probability = 0.0; // isolate record traffic
        let mut stms = Stms::new(cfg);
        record_seq(&mut stms, 0, &(0..16u64).collect::<Vec<_>>(), &mut d);
        // 16 appends at 4 entries/block = 4 packed writes.
        assert_eq!(d.traffic().meta_record, 4 * 64);
        assert_eq!(d.traffic().meta_update, 0);
    }

    #[test]
    fn end_of_stream_annotation_stops_later_follows() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        // Record a stream A..H on core 0.
        record_seq(&mut stms, 0, &[1, 2, 3, 4, 5, 6, 7, 8], &mut d);
        // Follow it from A, consume 2 prefetched hits, then trigger elsewhere.
        let chunk = stms
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert!(!chunk.addresses.is_empty());
        stms.record(CoreId::new(0), LineAddr::new(2), true, Cycle::ZERO, &mut d);
        stms.record(CoreId::new(0), LineAddr::new(3), true, Cycle::ZERO, &mut d);
        // New trigger on an unrelated address ends the stream and writes a
        // mark after the last contiguous hit (position of address 4).
        let _ = stms.on_trigger(CoreId::new(0), LineAddr::new(777), Cycle::ZERO, &mut d);
        assert_eq!(stms.stats().end_marks, 1);
        // Following the stream again stops at the mark.
        let chunk = stms
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(chunk.addresses, vec![LineAddr::new(2), LineAddr::new(3)]);
        let next = stms.next_chunk(CoreId::new(0), Cycle::ZERO, &mut d);
        assert!(next.is_empty(), "stream is paused at the end mark");
    }

    #[test]
    fn finish_flushes_buffers() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(&mut stms, 0, &[1, 2], &mut d);
        let record_before = d.traffic().meta_record;
        stms.finish(Cycle::ZERO, &mut d);
        assert!(
            d.traffic().meta_record > record_before,
            "partial history block flushed"
        );
    }

    #[test]
    fn next_chunk_without_active_stream_is_empty() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        assert!(stms
            .next_chunk(CoreId::new(0), Cycle::ZERO, &mut d)
            .is_empty());
        assert_eq!(stms.name(), "stms");
        assert_eq!(stms.config().cores, 2);
    }

    #[test]
    #[should_panic(expected = "invalid STMS configuration")]
    fn invalid_config_panics() {
        let mut cfg = small_cfg();
        cfg.sampling_probability = 2.0;
        let _ = Stms::new(cfg);
    }

    #[test]
    fn index_points_to_most_recent_occurrence_when_sampled_in() {
        let mut d = dram();
        let mut stms = Stms::new(small_cfg());
        record_seq(&mut stms, 0, &[1, 2, 3, 1, 9, 10], &mut d);
        let chunk = stms
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(
            chunk.addresses[0],
            LineAddr::new(9),
            "latest occurrence wins at 100% sampling"
        );
    }
}
