//! Sampled Temporal Memory Streaming (STMS) — a practical address-correlating
//! prefetcher that keeps all predictor meta-data in main memory.
//!
//! This crate is the reproduction of the primary contribution of
//! *Practical Off-chip Meta-data for Temporal Memory Streaming* (Wenisch et
//! al., HPCA 2009). The paper identifies three requirements for practical
//! off-chip prefetcher meta-data and proposes one mechanism for each:
//!
//! 1. **Minimal off-chip lookup latency** → [`HashIndexTable`], a
//!    hardware-managed, bucketized main-memory hash table whose buckets fit a
//!    single 64-byte memory block (12 `{address, pointer}` pairs, LRU within
//!    the bucket), so a lookup is one memory access; an 8 KB on-chip bucket
//!    buffer coalesces the read-modify-write of updates.
//! 2. **Bandwidth-efficient meta-data updates** → [`UpdateSampler`],
//!    probabilistic sampling of index-table updates (12.5% by default).
//! 3. **Lookups amortized over many prefetches** → the split meta-data
//!    organization of [`OffChipHistory`] (per-core circular history buffers)
//!    plus the index table, which lets a single lookup stream an arbitrarily
//!    long miss sequence, with end-of-stream annotations to stop streaming
//!    past a stream's end.
//!
//! [`Stms`] combines the three mechanisms into a prefetcher that implements
//! [`stms_mem::Prefetcher`] and plugs into the workspace's CMP simulator.
//!
//! # Example
//!
//! ```
//! use stms_core::{Stms, StmsConfig};
//! use stms_mem::{CmpSimulator, SimOptions, SystemConfig};
//! use stms_workloads::{presets, generate};
//!
//! // Simulate a small OLTP-like trace with STMS.
//! let trace = generate(&presets::oltp_db2().with_accesses(20_000));
//! let sys = SystemConfig::tiny_for_tests();
//! let mut stms = Stms::new(StmsConfig::scaled_default());
//! let result = CmpSimulator::new(&sys, SimOptions::default()).run(&trace, &mut stms);
//! println!("STMS coverage: {:.1}%", 100.0 * result.coverage());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod history;
pub mod index;
pub mod index_alt;
pub mod sampler;
pub mod stms;

pub use config::StmsConfig;
pub use history::{HistoryBlock, OffChipHistory};
pub use index::{HashIndexTable, HistoryPointer, IndexStats};
pub use index_alt::{AltLookup, ChainedIndex, OpenAddressIndex};
pub use sampler::UpdateSampler;
pub use stms::{Stms, StmsStats};
