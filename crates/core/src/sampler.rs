//! Probabilistic index-update sampling (§4.4).
//!
//! For every potential index-table update, a biased coin flip decides whether
//! the update is actually performed. Index-update bandwidth is directly
//! proportional to the sampling probability, while coverage degrades only
//! slowly because long streams get an entry a few blocks in and short streams
//! recur often enough to be indexed eventually.

use serde::{Deserialize, Serialize};

/// A deterministic Bernoulli sampler driven by an xorshift64* sequence.
///
/// Determinism matters for reproducible experiments: two runs with the same
/// seed and probability skip exactly the same updates.
///
/// # Example
///
/// ```
/// use stms_core::UpdateSampler;
///
/// let mut sampler = UpdateSampler::new(0.125, 42);
/// let accepted = (0..10_000).filter(|_| sampler.should_update()).count();
/// assert!((accepted as f64 - 1250.0).abs() < 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateSampler {
    probability: f64,
    state: u64,
    draws: u64,
    accepted: u64,
}

impl UpdateSampler {
    /// Creates a sampler that accepts updates with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "sampling probability must be in [0,1], got {probability}"
        );
        UpdateSampler {
            probability,
            state: seed | 1,
            draws: 0,
            accepted: 0,
        }
    }

    /// The configured sampling probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Draws the next coin flip: `true` means the index update should be
    /// performed.
    pub fn should_update(&mut self) -> bool {
        self.draws += 1;
        if self.probability >= 1.0 {
            self.accepted += 1;
            return true;
        }
        if self.probability <= 0.0 {
            return false;
        }
        // xorshift64* — cheap, deterministic, good enough for Bernoulli draws.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let value = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let unit = (value >> 11) as f64 / (1u64 << 53) as f64;
        let accept = unit < self.probability;
        if accept {
            self.accepted += 1;
        }
        accept
    }

    /// Number of draws made so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Number of accepted (performed) updates so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Observed acceptance rate so far (0 if no draws were made).
    pub fn observed_rate(&self) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            self.accepted as f64 / self.draws as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn always_and_never() {
        let mut all = UpdateSampler::new(1.0, 7);
        let mut none = UpdateSampler::new(0.0, 7);
        for _ in 0..100 {
            assert!(all.should_update());
            assert!(!none.should_update());
        }
        assert_eq!(all.accepted(), 100);
        assert_eq!(none.accepted(), 0);
        assert_eq!(all.observed_rate(), 1.0);
        assert_eq!(none.observed_rate(), 0.0);
        assert_eq!(
            UpdateSampler::new(0.5, 1).observed_rate(),
            0.0,
            "no draws yet"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = UpdateSampler::new(0.3, 99);
        let mut b = UpdateSampler::new(0.3, 99);
        let seq_a: Vec<bool> = (0..1000).map(|_| a.should_update()).collect();
        let seq_b: Vec<bool> = (0..1000).map(|_| b.should_update()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = UpdateSampler::new(0.5, 1);
        let mut b = UpdateSampler::new(0.5, 2);
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_update()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.should_update()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_probability_panics() {
        let _ = UpdateSampler::new(1.5, 0);
    }

    proptest! {
        /// The observed acceptance rate converges to the configured
        /// probability.
        #[test]
        fn prop_rate_matches_probability(p in 0.05f64..0.95, seed in any::<u64>()) {
            let mut s = UpdateSampler::new(p, seed);
            let n = 20_000u64;
            for _ in 0..n {
                s.should_update();
            }
            prop_assert_eq!(s.draws(), n);
            let rate = s.observed_rate();
            prop_assert!((rate - p).abs() < 0.03, "rate {} vs p {}", rate, p);
            prop_assert!((s.probability() - p).abs() < 1e-12);
        }
    }
}
