//! The hardware-managed, bucketized main-memory hash index table (§4.3) and
//! its on-chip bucket buffer.
//!
//! Physical (line) addresses hash to a bucket; each bucket occupies exactly
//! one 64-byte memory block and holds up to 12 `{address, history pointer}`
//! pairs kept in LRU order. A lookup retrieves the whole bucket with a single
//! main-memory access and searches it linearly (the search is free relative
//! to the access latency). Updates read the bucket, replace the LRU entry if
//! the address is absent, and write the bucket back.
//!
//! The small on-chip *bucket buffer* (8 KB = 128 buckets) holds recently
//! accessed buckets so that an update immediately following a lookup of the
//! same bucket does not pay a second memory round trip, and so that dirty
//! buckets are written back lazily when bandwidth is available.

use stms_mem::{DramModel, TrafficClass};
use stms_types::{CoreId, Cycle, LineAddr};

/// A pointer into a history buffer: which core's buffer and which position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryPointer {
    /// The core whose history buffer contains the stream.
    pub core: CoreId,
    /// Absolute position within that history buffer.
    pub position: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BucketEntry {
    line: LineAddr,
    pointer: HistoryPointer,
}

/// One 64-byte bucket: entries kept in MRU-first order.
#[derive(Debug, Clone, Default)]
struct Bucket {
    entries: Vec<BucketEntry>,
}

/// Counters describing index-table behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found the address.
    pub hits: u64,
    /// Updates performed (after sampling).
    pub updates: u64,
    /// Lookups or updates satisfied by the on-chip bucket buffer (no memory
    /// read needed).
    pub buffer_hits: u64,
    /// Dirty buckets written back to memory.
    pub writebacks: u64,
}

/// The shared, bucketized main-memory index table with its on-chip bucket
/// buffer.
///
/// # Example
///
/// ```
/// use stms_core::{HashIndexTable, HistoryPointer};
/// use stms_mem::{DramModel, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let mut index = HashIndexTable::new(1024, 12, 16);
/// let ptr = HistoryPointer { core: CoreId::new(0), position: 99 };
/// index.update(LineAddr::new(5), ptr, Cycle::ZERO, &mut dram);
/// let (found, _ready) = index.lookup(LineAddr::new(5), Cycle::ZERO, &mut dram);
/// assert_eq!(found, Some(ptr));
/// ```
#[derive(Debug)]
pub struct HashIndexTable {
    buckets: Vec<Bucket>,
    entries_per_bucket: usize,
    /// On-chip bucket buffer: (bucket index, dirty), MRU at the back.
    buffer: Vec<(usize, bool)>,
    buffer_capacity: usize,
    stats: IndexStats,
}

impl HashIndexTable {
    /// Creates an index table with `buckets` buckets of `entries_per_bucket`
    /// entries and an on-chip buffer of `bucket_buffer_blocks` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `entries_per_bucket` is zero.
    pub fn new(buckets: usize, entries_per_bucket: usize, bucket_buffer_blocks: usize) -> Self {
        assert!(buckets > 0 && entries_per_bucket > 0);
        HashIndexTable {
            buckets: vec![Bucket::default(); buckets],
            entries_per_bucket,
            buffer: Vec::with_capacity(bucket_buffer_blocks),
            buffer_capacity: bucket_buffer_blocks,
            stats: IndexStats::default(),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total entries currently stored across all buckets.
    pub fn occupancy(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.len()).sum()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    fn bucket_of(&self, line: LineAddr) -> usize {
        // SplitMix64-style finalizer: spreads even highly-structured line
        // addresses (e.g. strided allocations) evenly across buckets.
        let mut h = line.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % self.buckets.len() as u64) as usize
    }

    /// Brings `bucket` into the on-chip buffer, charging a memory read if it
    /// was not already buffered. Returns the cycle at which the bucket's
    /// contents are available.
    fn acquire_bucket(
        &mut self,
        bucket: usize,
        now: Cycle,
        dram: &mut DramModel,
        class: TrafficClass,
    ) -> Cycle {
        if let Some(pos) = self.buffer.iter().position(|&(b, _)| b == bucket) {
            // Refresh recency.
            let entry = self.buffer.remove(pos);
            self.buffer.push(entry);
            self.stats.buffer_hits += 1;
            return now;
        }
        let ready = dram.access(class, 64, now);
        if self.buffer.len() >= self.buffer_capacity && self.buffer_capacity > 0 {
            let (_, dirty) = self.buffer.remove(0);
            if dirty {
                dram.access(TrafficClass::MetaUpdate, 64, now);
                self.stats.writebacks += 1;
            }
        }
        if self.buffer_capacity > 0 {
            self.buffer.push((bucket, false));
        }
        ready
    }

    fn mark_dirty(&mut self, bucket: usize) {
        if let Some(entry) = self.buffer.iter_mut().find(|(b, _)| *b == bucket) {
            entry.1 = true;
        }
    }

    /// Looks up the history pointer for `line`. Returns the pointer (if any)
    /// and the cycle at which it is known (one memory round trip unless the
    /// bucket was resident in the bucket buffer).
    pub fn lookup(
        &mut self,
        line: LineAddr,
        now: Cycle,
        dram: &mut DramModel,
    ) -> (Option<HistoryPointer>, Cycle) {
        self.stats.lookups += 1;
        let bucket_idx = self.bucket_of(line);
        let ready = self.acquire_bucket(bucket_idx, now, dram, TrafficClass::MetaLookup);
        let entries = &mut self.buckets[bucket_idx].entries;
        if let Some(pos) = entries.iter().position(|e| e.line == line) {
            // Move to MRU position.
            let entry = entries.remove(pos);
            entries.insert(0, entry);
            self.stats.hits += 1;
            (Some(entry.pointer), ready)
        } else {
            (None, ready)
        }
    }

    /// Inserts or refreshes the mapping `line -> pointer`, replacing the LRU
    /// entry of the bucket if it is full.
    pub fn update(
        &mut self,
        line: LineAddr,
        pointer: HistoryPointer,
        now: Cycle,
        dram: &mut DramModel,
    ) {
        self.stats.updates += 1;
        let bucket_idx = self.bucket_of(line);
        // An update is a read-modify-write of the bucket; the read is skipped
        // when the bucket is buffered, the write is deferred until eviction.
        self.acquire_bucket(bucket_idx, now, dram, TrafficClass::MetaUpdate);
        self.mark_dirty(bucket_idx);
        let entries_per_bucket = self.entries_per_bucket;
        let entries = &mut self.buckets[bucket_idx].entries;
        if let Some(pos) = entries.iter().position(|e| e.line == line) {
            entries.remove(pos);
        }
        entries.insert(0, BucketEntry { line, pointer });
        entries.truncate(entries_per_bucket);
    }

    /// Writes back every dirty buffered bucket (end of simulation).
    pub fn flush(&mut self, now: Cycle, dram: &mut DramModel) {
        for (_, dirty) in self.buffer.iter_mut() {
            if *dirty {
                dram.access(TrafficClass::MetaUpdate, 64, now);
                self.stats.writebacks += 1;
                *dirty = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn ptr(core: u16, position: u64) -> HistoryPointer {
        HistoryPointer {
            core: CoreId::new(core),
            position,
        }
    }

    #[test]
    fn update_then_lookup_round_trips() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(64, 12, 8);
        idx.update(LineAddr::new(10), ptr(1, 500), Cycle::ZERO, &mut d);
        let (found, _) = idx.lookup(LineAddr::new(10), Cycle::ZERO, &mut d);
        assert_eq!(found, Some(ptr(1, 500)));
        let (missing, _) = idx.lookup(LineAddr::new(11), Cycle::ZERO, &mut d);
        assert_eq!(missing, None);
        assert_eq!(idx.stats().lookups, 2);
        assert_eq!(idx.stats().hits, 1);
        assert_eq!(idx.stats().updates, 1);
        assert_eq!(idx.occupancy(), 1);
    }

    #[test]
    fn update_refreshes_existing_entry_without_growth() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(64, 12, 8);
        idx.update(LineAddr::new(10), ptr(0, 1), Cycle::ZERO, &mut d);
        idx.update(LineAddr::new(10), ptr(0, 2), Cycle::ZERO, &mut d);
        assert_eq!(idx.occupancy(), 1);
        let (found, _) = idx.lookup(LineAddr::new(10), Cycle::ZERO, &mut d);
        assert_eq!(found, Some(ptr(0, 2)), "latest pointer wins");
    }

    #[test]
    fn bucket_lru_replacement_when_full() {
        let mut d = dram();
        // One bucket only: everything collides; 3 entries per bucket.
        let mut idx = HashIndexTable::new(1, 3, 8);
        for i in 0..3u64 {
            idx.update(LineAddr::new(i), ptr(0, i), Cycle::ZERO, &mut d);
        }
        // Touch line 0 so it becomes MRU, then insert a fourth entry.
        let _ = idx.lookup(LineAddr::new(0), Cycle::ZERO, &mut d);
        idx.update(LineAddr::new(99), ptr(0, 99), Cycle::ZERO, &mut d);
        assert_eq!(idx.occupancy(), 3);
        // Line 1 was the LRU entry and must be gone; 0 and 2's relative order:
        // 1 was older than 2? order after ops: [0 (MRU), 2, 1] -> inserting 99
        // drops 1.
        assert_eq!(idx.lookup(LineAddr::new(1), Cycle::ZERO, &mut d).0, None);
        assert!(idx
            .lookup(LineAddr::new(0), Cycle::ZERO, &mut d)
            .0
            .is_some());
        assert!(idx
            .lookup(LineAddr::new(99), Cycle::ZERO, &mut d)
            .0
            .is_some());
    }

    #[test]
    fn lookup_costs_one_memory_access_when_not_buffered() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(1024, 12, 4);
        let (none, ready) = idx.lookup(LineAddr::new(5), Cycle::new(10), &mut d);
        assert_eq!(none, None);
        assert!(ready >= Cycle::new(10 + 180), "one DRAM round trip");
        assert_eq!(d.traffic().meta_lookup, 64);
    }

    #[test]
    fn bucket_buffer_absorbs_update_after_lookup() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(1024, 12, 4);
        let line = LineAddr::new(77);
        let _ = idx.lookup(line, Cycle::ZERO, &mut d);
        let lookup_bytes = d.traffic().meta_lookup;
        let update_bytes = d.traffic().meta_update;
        // The following update hits the buffered bucket: no additional read.
        idx.update(line, ptr(0, 3), Cycle::ZERO, &mut d);
        assert_eq!(d.traffic().meta_lookup, lookup_bytes);
        assert_eq!(
            d.traffic().meta_update,
            update_bytes,
            "write-back is deferred"
        );
        assert_eq!(idx.stats().buffer_hits, 1);
        // Flush forces the dirty bucket out.
        idx.flush(Cycle::ZERO, &mut d);
        assert_eq!(d.traffic().meta_update, update_bytes + 64);
        assert_eq!(idx.stats().writebacks, 1);
    }

    #[test]
    fn evicting_dirty_buffered_bucket_writes_back() {
        let mut d = dram();
        // Buffer of one bucket so every new bucket evicts the previous one.
        let mut idx = HashIndexTable::new(1024, 12, 1);
        idx.update(LineAddr::new(1), ptr(0, 1), Cycle::ZERO, &mut d);
        let before = idx.stats().writebacks;
        // Touch a different bucket: the dirty one must be written back.
        let mut other = LineAddr::new(2);
        // Find a line that maps to a different bucket.
        while idx.bucket_of(other) == idx.bucket_of(LineAddr::new(1)) {
            other = LineAddr::new(other.raw() + 1);
        }
        idx.update(other, ptr(0, 2), Cycle::ZERO, &mut d);
        assert_eq!(idx.stats().writebacks, before + 1);
    }

    #[test]
    fn flush_twice_is_idempotent() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(64, 12, 8);
        idx.update(LineAddr::new(1), ptr(0, 1), Cycle::ZERO, &mut d);
        idx.flush(Cycle::ZERO, &mut d);
        let wb = idx.stats().writebacks;
        idx.flush(Cycle::ZERO, &mut d);
        assert_eq!(idx.stats().writebacks, wb);
    }

    #[test]
    fn addresses_spread_over_buckets() {
        let idx = HashIndexTable::new(256, 12, 8);
        let mut used = std::collections::HashSet::new();
        for i in 0..1000u64 {
            used.insert(idx.bucket_of(LineAddr::new(i * 64 + 7)));
        }
        assert!(
            used.len() > 200,
            "hashing should spread addresses, got {} buckets",
            used.len()
        );
    }

    #[test]
    fn zero_buffer_capacity_still_works() {
        let mut d = dram();
        let mut idx = HashIndexTable::new(64, 4, 0);
        idx.update(LineAddr::new(3), ptr(0, 9), Cycle::ZERO, &mut d);
        let (found, _) = idx.lookup(LineAddr::new(3), Cycle::ZERO, &mut d);
        assert_eq!(found, Some(ptr(0, 9)));
    }

    #[test]
    #[should_panic]
    fn zero_buckets_panics() {
        let _ = HashIndexTable::new(0, 12, 8);
    }

    #[test]
    fn bucket_count_reported() {
        assert_eq!(HashIndexTable::new(77, 12, 8).bucket_count(), 77);
    }
}
