//! Alternative main-memory index-table organizations.
//!
//! §4.3 of the paper notes that "any associative lookup structure can be
//! used to implement an index table" and that the authors examined several —
//! open-address hash tables, longer bucket chains, tree structures — before
//! settling on the single-block bucketized table, because the alternatives
//! were "either less storage efficient or sacrificed additional coverage due
//! to increased lookup latency". This module implements two of those rejected
//! organizations so the trade-off can be reproduced (see the
//! `ablation-index` experiment):
//!
//! * [`OpenAddressIndex`] — one `{address, pointer}` entry per memory *word*,
//!   linear probing across 64-byte blocks: dense storage, but a lookup may
//!   touch several blocks (several memory round trips).
//! * [`ChainedIndex`] — buckets that overflow into chained blocks: unbounded
//!   per-bucket capacity, but cold lookups walk the chain.
//!
//! Both expose the same `lookup`/`update` shape as
//! [`crate::HashIndexTable`] and report how many memory blocks each
//! operation touched, which is the quantity that matters for latency and
//! bandwidth.

use crate::index::HistoryPointer;
use stms_mem::{DramModel, TrafficClass};
use stms_types::{Cycle, LineAddr};

/// Outcome of a lookup in an alternative index organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltLookup {
    /// The pointer found, if any.
    pub pointer: Option<HistoryPointer>,
    /// Cycle at which the result is known.
    pub ready_at: Cycle,
    /// Number of 64-byte memory blocks read to resolve the lookup.
    pub blocks_read: u32,
}

/// Entries that fit in one 64-byte block for the open-address layout
/// (8 bytes of tag + pointer per entry).
const OPEN_ADDRESS_ENTRIES_PER_BLOCK: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    line: LineAddr,
    pointer: HistoryPointer,
}

/// An open-addressing (linear-probing) main-memory hash table.
///
/// Storage density is maximal (every slot can be used), but once the table
/// fills up, lookups and updates probe across block boundaries and cost
/// multiple memory round trips — exactly the latency problem the bucketized
/// design avoids.
///
/// # Example
///
/// ```
/// use stms_core::{HistoryPointer, OpenAddressIndex};
/// use stms_mem::{DramModel, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let mut index = OpenAddressIndex::new(1024);
/// let ptr = HistoryPointer { core: CoreId::new(0), position: 7 };
/// index.update(LineAddr::new(42), ptr, Cycle::ZERO, &mut dram);
/// let found = index.lookup(LineAddr::new(42), Cycle::ZERO, &mut dram);
/// assert_eq!(found.pointer, Some(ptr));
/// assert!(found.blocks_read >= 1);
/// ```
#[derive(Debug)]
pub struct OpenAddressIndex {
    slots: Vec<Option<Slot>>,
    occupied: usize,
    /// Bound on probes so a nearly-full table cannot scan forever.
    max_probe_blocks: u32,
}

impl OpenAddressIndex {
    /// Creates a table with `slots` entry slots (rounded up to a whole number
    /// of blocks).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "open-address index needs at least one slot");
        let rounded =
            slots.div_ceil(OPEN_ADDRESS_ENTRIES_PER_BLOCK) * OPEN_ADDRESS_ENTRIES_PER_BLOCK;
        OpenAddressIndex {
            slots: vec![None; rounded],
            occupied: 0,
            max_probe_blocks: 8,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Bytes of main memory the table occupies.
    pub fn storage_bytes(&self) -> u64 {
        (self.slots.len() / OPEN_ADDRESS_ENTRIES_PER_BLOCK) as u64 * 64
    }

    fn home_slot(&self, line: LineAddr) -> usize {
        let mut h = line.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        (h % self.slots.len() as u64) as usize
    }

    /// Looks up `line`, probing linearly slot by slot from its home slot and
    /// paying one memory read each time the probe sequence enters a new
    /// 64-byte block.
    pub fn lookup(&self, line: LineAddr, now: Cycle, dram: &mut DramModel) -> AltLookup {
        let home = self.home_slot(line);
        let len = self.slots.len();
        let max_probes = (self.max_probe_blocks as usize * OPEN_ADDRESS_ENTRIES_PER_BLOCK).min(len);
        let mut ready_at = now;
        let mut blocks_read = 0;
        let mut current_block = usize::MAX;
        for probe in 0..max_probes {
            let idx = (home + probe) % len;
            let block = idx / OPEN_ADDRESS_ENTRIES_PER_BLOCK;
            if block != current_block {
                ready_at = dram.access(TrafficClass::MetaLookup, 64, ready_at);
                blocks_read += 1;
                current_block = block;
            }
            match &self.slots[idx] {
                Some(s) if s.line == line => {
                    return AltLookup {
                        pointer: Some(s.pointer),
                        ready_at,
                        blocks_read,
                    };
                }
                // Linear probing invariant: an entry is never stored beyond
                // the first empty slot of its probe path.
                None => break,
                _ => {}
            }
        }
        AltLookup {
            pointer: None,
            ready_at,
            blocks_read,
        }
    }

    /// Inserts or refreshes `line -> pointer`, probing for the entry or a
    /// free slot. Returns the number of blocks touched (read-modify-write).
    /// When the probe budget is exhausted on a full region, the home slot is
    /// overwritten (the table cannot grow).
    pub fn update(
        &mut self,
        line: LineAddr,
        pointer: HistoryPointer,
        now: Cycle,
        dram: &mut DramModel,
    ) -> u32 {
        let home = self.home_slot(line);
        let len = self.slots.len();
        let mut blocks = 0;
        let mut target: Option<usize> = None;
        for probe in 0..(self.max_probe_blocks as usize * OPEN_ADDRESS_ENTRIES_PER_BLOCK).min(len) {
            let idx = (home + probe) % len;
            if probe % OPEN_ADDRESS_ENTRIES_PER_BLOCK == 0 {
                dram.access(TrafficClass::MetaUpdate, 64, now);
                blocks += 1;
            }
            match &self.slots[idx] {
                Some(s) if s.line == line => {
                    target = Some(idx);
                    break;
                }
                None => {
                    target = Some(idx);
                    break;
                }
                _ => {}
            }
        }
        let idx = target.unwrap_or(home);
        if self.slots[idx].is_none() {
            self.occupied += 1;
        }
        self.slots[idx] = Some(Slot { line, pointer });
        // Write back the modified block.
        dram.access(TrafficClass::MetaUpdate, 64, now);
        blocks + 1
    }
}

/// One chained bucket: a head block plus overflow blocks.
#[derive(Debug, Clone, Default)]
struct Chain {
    entries: Vec<Slot>,
}

/// A chained-bucket hash table: each bucket grows by linking additional
/// 64-byte blocks, so no entry is ever displaced, but a lookup may have to
/// walk the whole chain (one memory access per link).
#[derive(Debug)]
pub struct ChainedIndex {
    chains: Vec<Chain>,
    entries_per_block: usize,
    entries: usize,
}

impl ChainedIndex {
    /// Creates a chained table with `buckets` chains whose blocks hold
    /// `entries_per_block` entries each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(buckets: usize, entries_per_block: usize) -> Self {
        assert!(buckets > 0 && entries_per_block > 0);
        ChainedIndex {
            chains: vec![Chain::default(); buckets],
            entries_per_block,
            entries: 0,
        }
    }

    /// Total entries stored.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Bytes of main memory the table occupies (head blocks plus overflow).
    pub fn storage_bytes(&self) -> u64 {
        self.chains
            .iter()
            .map(|c| c.entries.len().div_ceil(self.entries_per_block).max(1) as u64 * 64)
            .sum()
    }

    fn chain_of(&self, line: LineAddr) -> usize {
        let mut h = line.raw().wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 29;
        (h % self.chains.len() as u64) as usize
    }

    /// Looks up `line`, walking the chain one block at a time.
    pub fn lookup(&self, line: LineAddr, now: Cycle, dram: &mut DramModel) -> AltLookup {
        let chain = &self.chains[self.chain_of(line)];
        let mut ready_at = now;
        let mut blocks_read = 0;
        let blocks = chain.entries.len().div_ceil(self.entries_per_block).max(1);
        for block in 0..blocks {
            ready_at = dram.access(TrafficClass::MetaLookup, 64, ready_at);
            blocks_read += 1;
            let base = block * self.entries_per_block;
            let end = (base + self.entries_per_block).min(chain.entries.len());
            if let Some(slot) = chain.entries[base..end].iter().find(|s| s.line == line) {
                return AltLookup {
                    pointer: Some(slot.pointer),
                    ready_at,
                    blocks_read,
                };
            }
        }
        AltLookup {
            pointer: None,
            ready_at,
            blocks_read,
        }
    }

    /// Inserts or refreshes `line -> pointer`; new entries append to the
    /// chain's most recent block (allocating an overflow block if needed).
    pub fn update(
        &mut self,
        line: LineAddr,
        pointer: HistoryPointer,
        now: Cycle,
        dram: &mut DramModel,
    ) -> u32 {
        let idx = self.chain_of(line);
        let chain = &mut self.chains[idx];
        dram.access(TrafficClass::MetaUpdate, 64, now);
        if let Some(slot) = chain.entries.iter_mut().find(|s| s.line == line) {
            slot.pointer = pointer;
        } else {
            chain.entries.push(Slot { line, pointer });
            self.entries += 1;
        }
        1
    }

    /// Length (in blocks) of the longest chain — the worst-case lookup cost.
    pub fn longest_chain_blocks(&self) -> usize {
        self.chains
            .iter()
            .map(|c| c.entries.len().div_ceil(self.entries_per_block).max(1))
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;
    use stms_types::CoreId;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn ptr(position: u64) -> HistoryPointer {
        HistoryPointer {
            core: CoreId::new(0),
            position,
        }
    }

    #[test]
    fn open_address_round_trip() {
        let mut d = dram();
        let mut idx = OpenAddressIndex::new(256);
        assert!(idx.is_empty());
        idx.update(LineAddr::new(1), ptr(10), Cycle::ZERO, &mut d);
        idx.update(LineAddr::new(2), ptr(20), Cycle::ZERO, &mut d);
        idx.update(LineAddr::new(1), ptr(11), Cycle::ZERO, &mut d);
        assert_eq!(idx.len(), 2);
        assert_eq!(
            idx.lookup(LineAddr::new(1), Cycle::ZERO, &mut d).pointer,
            Some(ptr(11))
        );
        assert_eq!(
            idx.lookup(LineAddr::new(3), Cycle::ZERO, &mut d).pointer,
            None
        );
        assert!(idx.storage_bytes() >= 256 / 8 * 64);
    }

    #[test]
    fn open_address_probing_costs_more_blocks_when_loaded() {
        let mut d = dram();
        let mut idx = OpenAddressIndex::new(64);
        // Load the table to near capacity so probes cross block boundaries.
        for i in 0..60u64 {
            idx.update(LineAddr::new(i * 131), ptr(i), Cycle::ZERO, &mut d);
        }
        let mut max_blocks = 0;
        for i in 0..60u64 {
            let l = idx.lookup(LineAddr::new(i * 131), Cycle::ZERO, &mut d);
            assert_eq!(l.pointer, Some(ptr(i)));
            max_blocks = max_blocks.max(l.blocks_read);
        }
        assert!(
            max_blocks > 1,
            "a nearly-full open-address table must probe across blocks (max {max_blocks})"
        );
    }

    #[test]
    fn open_address_lookup_latency_grows_with_probes() {
        let mut d = dram();
        let idx = OpenAddressIndex::new(64);
        let l = idx.lookup(LineAddr::new(5), Cycle::new(100), &mut d);
        assert!(
            l.ready_at >= Cycle::new(280),
            "at least one memory round trip"
        );
        assert_eq!(
            l.blocks_read, 1,
            "an empty table stops at the first (empty) block"
        );
    }

    #[test]
    fn chained_round_trip_and_growth() {
        let mut d = dram();
        let mut idx = ChainedIndex::new(4, 4);
        assert!(idx.is_empty());
        for i in 0..32u64 {
            idx.update(LineAddr::new(i), ptr(i), Cycle::ZERO, &mut d);
        }
        assert_eq!(idx.len(), 32);
        for i in 0..32u64 {
            assert_eq!(
                idx.lookup(LineAddr::new(i), Cycle::ZERO, &mut d).pointer,
                Some(ptr(i))
            );
        }
        // 32 entries over 4 chains of 4-entry blocks -> chains of ~2 blocks.
        assert!(idx.longest_chain_blocks() >= 2);
        assert!(idx.storage_bytes() >= 8 * 64);
        // Updating an existing entry does not grow the chain.
        idx.update(LineAddr::new(0), ptr(99), Cycle::ZERO, &mut d);
        assert_eq!(idx.len(), 32);
        assert_eq!(
            idx.lookup(LineAddr::new(0), Cycle::ZERO, &mut d).pointer,
            Some(ptr(99))
        );
    }

    #[test]
    fn chained_lookup_cost_grows_with_chain_length() {
        let mut d = dram();
        let mut idx = ChainedIndex::new(1, 4);
        for i in 0..40u64 {
            idx.update(LineAddr::new(i), ptr(i), Cycle::ZERO, &mut d);
        }
        // The last-inserted entries live deep in the chain.
        let deep = idx.lookup(LineAddr::new(39), Cycle::ZERO, &mut d);
        assert!(
            deep.blocks_read >= 5,
            "deep entries cost many block reads, got {}",
            deep.blocks_read
        );
        let missing = idx.lookup(LineAddr::new(999), Cycle::ZERO, &mut d);
        assert_eq!(missing.pointer, None);
        assert_eq!(missing.blocks_read as usize, idx.longest_chain_blocks());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = OpenAddressIndex::new(0);
    }
}
