//! Concurrency stress and fault-injection harness for the serving daemon:
//! many virtual clients on real sockets against an in-process server,
//! asserting exactly-once replay (via campaign counters), byte-identical
//! responses across clients and against the library, and no hang or leaked
//! gate slot under injected client disconnects and corrupt cache blobs.

use std::collections::HashSet;
use std::fs;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stms_serve::{ServeConfig, Server};
use stms_sim::campaign::{Campaign, CampaignCaches};
use stms_sim::{experiments, job_fingerprint, ExperimentConfig};
use stms_stats::ServeReport;
use stms_types::wire::{self, Request, RequestFormat, Response, ServeCounters};

fn quick() -> ExperimentConfig {
    ExperimentConfig::quick().with_accesses(6_000)
}

fn temp_path(tag: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stms-serve-{tag}-{}{suffix}", std::process::id()))
}

/// An in-process daemon on a real Unix socket, with the campaign kept
/// reachable for counter assertions.
struct TestServer {
    server: Arc<Server>,
    thread: Option<JoinHandle<ServeReport>>,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> TestServer {
        let socket = temp_path(tag, ".sock");
        let _ = fs::remove_file(&socket);
        let mut config = ServeConfig::new(&socket, quick());
        config.threads = 2;
        config.read_timeout = Duration::from_secs(30);
        config.write_timeout = Duration::from_secs(30);
        configure(&mut config);
        let server = Arc::new(Server::bind(config).expect("bind serving socket"));
        let thread = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run_until(|| false))
        };
        TestServer {
            server,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> UnixStream {
        let stream =
            UnixStream::connect(self.server.socket_path()).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .set_write_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
    }

    fn campaign(&self) -> &Campaign {
        self.server.campaign()
    }

    /// One full `Run` exchange: all frames through `Done`/`Rejected`.
    fn run(&self, figures: &[&str], format: RequestFormat) -> Vec<Response> {
        exchange_run(&mut self.connect(), figures, format)
    }

    fn stats(&self) -> ServeCounters {
        let mut stream = self.connect();
        wire::send_request(&mut stream, &Request::Stats).unwrap();
        match wire::recv_response(&mut stream).unwrap() {
            Some(Response::Stats(counters)) => counters,
            other => panic!("unexpected answer to Stats: {other:?}"),
        }
    }

    /// One `Metrics` exchange: the daemon's telemetry registry, parsed
    /// back from the wire's JSON document.
    fn metrics(&self) -> stms_obs::Snapshot {
        let mut stream = self.connect();
        wire::send_request(&mut stream, &Request::Metrics).unwrap();
        match wire::recv_response(&mut stream).unwrap() {
            Some(Response::Metrics { json }) => {
                stms_obs::Snapshot::parse(&json).expect("wire metrics parse back")
            }
            other => panic!("unexpected answer to Metrics: {other:?}"),
        }
    }

    /// Requests shutdown, joins the accept loop, returns the final report.
    fn shutdown(mut self) -> ServeReport {
        let mut stream = self.connect();
        wire::send_request(&mut stream, &Request::Shutdown).unwrap();
        assert!(matches!(
            wire::recv_response(&mut stream).unwrap(),
            Some(Response::ShuttingDown)
        ));
        let report = self.thread.take().unwrap().join().expect("server thread");
        assert!(
            !self.server.socket_path().exists(),
            "socket file must be removed on exit"
        );
        report
    }
}

fn exchange_run(stream: &mut UnixStream, figures: &[&str], format: RequestFormat) -> Vec<Response> {
    let request = Request::Run {
        figures: figures.iter().map(|s| s.to_string()).collect(),
        format,
    };
    wire::send_request(stream, &request).unwrap();
    let mut frames = Vec::new();
    loop {
        match wire::recv_response(stream).expect("response frame") {
            Some(response) => {
                let last = matches!(response, Response::Done { .. } | Response::Rejected { .. });
                frames.push(response);
                if last {
                    return frames;
                }
            }
            None => panic!("stream ended before Done/Rejected: {frames:?}"),
        }
    }
}

/// Renders the reference bytes the one-shot CLI would print for `ids`,
/// through a plain library campaign with the same configuration.
fn reference_figures(ids: &[&str]) -> Vec<(String, String)> {
    let campaign = Campaign::with_threads(quick(), 2);
    let plans = ids
        .iter()
        .map(|id| experiments::plan_for_id(id, campaign.cfg()).expect("known id"))
        .collect();
    campaign
        .run_figures(plans)
        .into_iter()
        .map(|figure| {
            let figure = figure.expect("reference run cannot fail");
            (figure.id.clone(), figure.render())
        })
        .collect()
}

fn distinct_job_count(ids: &[&str]) -> usize {
    let cfg = quick();
    let mut seen = HashSet::new();
    for id in ids {
        let plan = experiments::plan_for_id(id, &cfg).expect("known id");
        for job in plan.jobs() {
            seen.insert(job_fingerprint(&cfg, job));
        }
    }
    seen.len()
}

#[test]
fn concurrent_identical_clients_share_one_execution_and_match_the_library() {
    let clients = 8;
    let ids = ["table2"];
    let server = TestServer::start("dedup", |config| {
        config.max_active = clients;
        config.max_queue = clients;
    });

    let barrier = Barrier::new(clients);
    let streams: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    server.run(&ids, RequestFormat::Text)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client saw the same frames, closing with a clean Done.
    for frames in &streams[1..] {
        assert_eq!(frames, &streams[0], "response streams diverged");
    }
    assert!(matches!(
        streams[0].last(),
        Some(Response::Done {
            figures: 1,
            failed: 0
        })
    ));

    // …and those frames carry exactly the library's rendering.
    let reference = reference_figures(&ids);
    match &streams[0][0] {
        Response::Figure { index, id, body } => {
            assert_eq!(*index, 0);
            assert_eq!((id.clone(), body.clone()), reference[0]);
        }
        other => panic!("expected a Figure frame, got {other:?}"),
    }

    // Exactly-once proof from the counters: eight concurrent requests for
    // the same grid executed each distinct cell once — the rest were shared
    // in flight or served from the memo — and each trace generated once.
    let distinct = distinct_job_count(&ids) as u64;
    let flights = server.campaign().flight_stats();
    assert_eq!(flights.executed, distinct, "each distinct cell ran once");
    let jobs_per_client = experiments::plan_for_id("table2", &quick())
        .unwrap()
        .job_count() as u64;
    let memo_hits = server
        .campaign()
        .cache_stats()
        .result
        .expect("server memoizes in memory")
        .total_hits();
    assert_eq!(
        flights.executed + flights.shared + memo_hits,
        jobs_per_client * clients as u64,
        "every requested cell is an execution, a shared flight, or a memo hit"
    );

    let report = server.shutdown();
    assert_eq!(report.accepted, clients as u64);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.jobs_executed, distinct);
    assert_eq!(report.figures_streamed, clients as u64);
}

#[test]
fn served_json_document_is_the_cli_document() {
    let ids = ["table1", "table2"];
    let server = TestServer::start("json", |_| {});
    let frames = server.run(&ids, RequestFormat::Json);

    // Figures stream first (text bodies), then the document, then Done.
    let document = frames
        .iter()
        .find_map(|f| match f {
            Response::Document { body } => Some(body.clone()),
            _ => None,
        })
        .expect("JSON runs close with a Document frame");
    assert!(matches!(
        frames.last(),
        Some(Response::Done {
            figures: 2,
            failed: 0
        })
    ));

    // The document must be byte-identical to what the one-shot CLI builds
    // from the same figures (both sides use the same JSON helpers).
    let campaign = Campaign::with_threads(quick(), 2);
    let plans = ids
        .iter()
        .map(|id| experiments::plan_for_id(id, campaign.cfg()).unwrap())
        .collect();
    let items: Vec<serde_json::Value> = campaign
        .run_figures(plans)
        .iter()
        .map(experiments::figure_json_item)
        .collect();
    assert_eq!(document, experiments::figures_json_document(items));
    server.shutdown();
}

#[test]
fn disconnect_mid_stream_reclaims_the_slot_and_cancels_pending_jobs() {
    let server = TestServer::start("disconnect", |config| {
        config.max_active = 1;
        config.max_queue = 4;
        // Make the watcher's idle poll short so abandonment is noticed fast.
        config.read_timeout = Duration::from_millis(100);
    });

    // A client asks for two figures, reads exactly one frame, and vanishes
    // without any handshake.
    {
        let mut stream = server.connect();
        let request = Request::Run {
            figures: vec!["table1".to_string(), "table2".to_string()],
            format: RequestFormat::Text,
        };
        wire::send_request(&mut stream, &request).unwrap();
        let first = wire::recv_response(&mut stream).unwrap();
        assert!(matches!(first, Some(Response::Figure { .. })));
        // Drop: the server's watcher must fire the run's cancel token.
    }

    // A well-behaved request right behind it must still be served promptly
    // and correctly — the gate slot was reclaimed, no worker is stuck.
    let frames = server.run(&["table1"], RequestFormat::Text);
    assert!(matches!(
        frames.last(),
        Some(Response::Done {
            figures: 1,
            failed: 0
        })
    ));
    let reference = reference_figures(&["table1"]);
    match &frames[0] {
        Response::Figure { id, body, .. } => {
            assert_eq!((id.clone(), body.clone()), reference[0]);
        }
        other => panic!("expected a Figure frame, got {other:?}"),
    }

    // The abandoned run must be fully torn down: nothing active, nothing
    // queued, and the abandonment counted.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let counters = server.stats();
        if counters.active_requests == 0 && counters.queued_requests == 0 {
            assert!(counters.cancelled >= 1, "the disconnect must be counted");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned request never released its slot: {counters:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let report = server.shutdown();
    assert!(report.cancelled >= 1);
}

#[test]
fn corrupt_trace_blobs_under_concurrent_requests_fall_back_correctly() {
    let cache_dir = temp_path("corrupt-cache", "");
    let _ = fs::remove_dir_all(&cache_dir);
    let clients = 8;
    let server = TestServer::start("corrupt", |config| {
        config.max_active = clients;
        config.max_queue = clients;
        config.caches = CampaignCaches {
            trace_dir: Some(cache_dir.clone()),
            stream_traces: true,
            result_memory: true,
            ..CampaignCaches::default()
        };
    });

    // Warm the disk tier: table2 generates every workload's trace file.
    let warm = server.run(&["table2"], RequestFormat::Text);
    assert!(matches!(
        warm.last(),
        Some(Response::Done { failed: 0, .. })
    ));

    // Garble every sealed trace file on disk.
    let mut garbled = 0;
    for entry in fs::read_dir(&cache_dir).expect("cache dir exists") {
        let path = entry.unwrap().path();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        garbled += 1;
    }
    assert!(garbled > 0, "the warm run must have written trace files");

    // Eight concurrent clients now request a figure whose streamed replays
    // read those files; every one must still get the correct bytes.
    let barrier = Barrier::new(clients);
    let streams: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    server.run(&["fig4"], RequestFormat::Text)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for frames in &streams[1..] {
        assert_eq!(frames, &streams[0], "response streams diverged");
    }
    assert!(matches!(
        streams[0].last(),
        Some(Response::Done {
            figures: 1,
            failed: 0
        })
    ));
    let reference = reference_figures(&["fig4"]);
    match &streams[0][0] {
        Response::Figure { id, body, .. } => {
            assert_eq!((id.clone(), body.clone()), reference[0]);
        }
        other => panic!("expected a Figure frame, got {other:?}"),
    }

    // The corruption must actually have been hit and recovered from.
    let trace = server.campaign().store().stats();
    assert!(
        trace.stream_fallbacks >= 1 || trace.disk_corrupt >= 1,
        "corrupt blobs must be detected, not silently replayed: {trace:?}"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&cache_dir);
}

#[test]
fn admission_storm_rejects_past_the_queue_and_serves_the_rest_identically() {
    let clients = 8;
    let server = TestServer::start("storm", |config| {
        config.max_active = 1;
        config.max_queue = 1;
        config.threads = 1;
    });

    let barrier = Barrier::new(clients);
    let streams: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    server.run(&["table2"], RequestFormat::Text)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut accepted: Vec<&Vec<Response>> = Vec::new();
    let mut rejected = 0;
    for frames in &streams {
        match frames.last() {
            Some(Response::Done { failed: 0, .. }) => accepted.push(frames),
            Some(Response::Rejected { reason }) => {
                assert!(reason.contains("capacity"), "unexpected reason: {reason}");
                assert_eq!(frames.len(), 1, "a rejection is the only frame");
                rejected += 1;
            }
            other => panic!("unexpected final frame: {other:?}"),
        }
    }
    assert_eq!(accepted.len() + rejected, clients);
    assert!(
        !accepted.is_empty(),
        "at least the fast-path client is served"
    );
    assert!(
        rejected >= 1,
        "eight simultaneous clients against capacity two must overflow"
    );
    // Accepted clients all saw identical bytes despite the storm.
    for frames in &accepted[1..] {
        assert_eq!(*frames, accepted[0]);
    }

    let report = server.shutdown();
    assert_eq!(report.accepted, accepted.len() as u64);
    assert_eq!(report.rejected, rejected as u64);
}

/// Asserts every metric of `before` is still present in `after` and has
/// not decreased — the wire contract for `Request::Metrics` probes
/// (cumulative since daemon start, never reset).
fn assert_monotone(before: &stms_obs::Snapshot, after: &stms_obs::Snapshot, when: &str) {
    for (name, value) in &before.counters {
        let later = after
            .counter(name)
            .unwrap_or_else(|| panic!("counter {name} vanished {when}"));
        assert!(later >= *value, "counter {name} went backwards {when}");
    }
    for (name, hist) in &before.histograms {
        let later = after
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} vanished {when}"));
        assert!(
            later.count >= hist.count,
            "histogram {name} count went backwards {when}"
        );
        assert!(
            later.sum >= hist.sum,
            "histogram {name} sum went backwards {when}"
        );
    }
}

#[test]
fn metrics_snapshots_are_monotone_across_a_stress_run() {
    let clients = 6;
    let ids = ["table2"];
    let server = TestServer::start("metrics", |config| {
        // Capacity one: the storm exercises the gate's waiting line, so
        // the admit-wait histogram sees real queueing.
        config.max_active = 1;
        config.max_queue = clients;
    });

    // Probe before any run: the registry may already carry metrics (it is
    // process-wide and other tests share it), but never loses any.
    let before = server.metrics();

    let mut probes = vec![before];
    for round in 0..2 {
        let barrier = Barrier::new(clients);
        let streams: Vec<Vec<Response>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let server = &server;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        server.run(&ids, RequestFormat::Text)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for frames in &streams {
            assert!(
                matches!(frames.last(), Some(Response::Done { failed: 0, .. })),
                "round {round}: every client completes cleanly"
            );
        }
        probes.push(server.metrics());
    }

    for (i, pair) in probes.windows(2).enumerate() {
        assert_monotone(
            &pair[0],
            &pair[1],
            &format!("between probes {i} and {}", i + 1),
        );
    }

    // The run left its footprint: job phases were timed, flights counted,
    // and the saturated gate recorded admission waits.
    let last = probes.last().unwrap();
    assert!(
        last.histogram("job.run_ns").is_some_and(|h| h.count > 0),
        "job phase timings must be recorded"
    );
    assert!(
        last.counter("flight.executed").unwrap_or(0) > 0,
        "flight leaders must be counted"
    );
    assert!(
        last.histogram("serve.gate.wait_ns")
            .is_some_and(|h| h.count >= (clients as u64) * 2),
        "every admitted request records its gate wait"
    );
    server.shutdown();
}

#[test]
fn garbage_and_oversized_frames_are_refused_and_the_daemon_survives() {
    use std::io::Write as _;
    let server = TestServer::start("garbage", |_| {});

    // Arbitrary non-protocol bytes: the server must answer with a Rejected
    // frame (or close), never crash or hang.
    {
        let mut stream = server.connect();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        match wire::recv_response(&mut stream) {
            Ok(Some(Response::Rejected { reason })) => {
                assert!(reason.contains("bad request frame"), "reason: {reason}");
            }
            Ok(Some(other)) => panic!("unexpected answer to garbage: {other:?}"),
            Ok(None) | Err(_) => {} // closed on us — also fail-closed
        }
    }

    // A frame whose declared length exceeds the protocol bound must be
    // refused before any allocation of that size.
    {
        let mut stream = server.connect();
        let oversized = (wire::MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        stream.write_all(&oversized).unwrap();
        match wire::recv_response(&mut stream) {
            Ok(Some(Response::Rejected { reason })) => {
                assert!(reason.contains("bad request frame"), "reason: {reason}");
            }
            Ok(Some(other)) => panic!("unexpected answer to oversized frame: {other:?}"),
            Ok(None) | Err(_) => {}
        }
    }

    // A connect-and-leave probe (what liveness checks do) is not an error.
    drop(server.connect());

    // The daemon is still fully functional.
    let mut stream = server.connect();
    wire::send_request(&mut stream, &Request::Ping).unwrap();
    assert!(matches!(
        wire::recv_response(&mut stream).unwrap(),
        Some(Response::Pong)
    ));
    let counters = server.stats();
    assert!(counters.requests >= 1);
    server.shutdown();
}
