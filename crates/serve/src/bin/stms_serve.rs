//! The resident campaign daemon.
//!
//! ```text
//! stms-serve --socket PATH [--quick] [--accesses N] [--threads N]
//!            [--trace-cache DIR] [--result-cache DIR] [--cache-verify]
//!            [--stream-traces] [--replay-pipeline DEPTH|auto] [--decode-threads N]
//!            [--trace-codec v2|v3] [--metrics-out FILE] [--calibrate-from DIR]
//!            [--max-active N] [--max-queue N] [--read-timeout-ms MS]
//! ```
//!
//! Binds the Unix socket, keeps one campaign (trace store, result memo,
//! job pool, in-flight dedup) alive across requests, and serves until
//! `SIGTERM`/`SIGINT` or a client sends the `Shutdown` request. On exit it
//! prints a `serve:` report, the cache counters, and the `telemetry:`
//! block to stderr and removes the socket file; `--metrics-out FILE`
//! additionally writes the final registry snapshot as versioned JSON.
//! Every reported counter is cumulative since daemon start (see the
//! library's counter-semantics notes); a live daemon answers the same
//! values to `stms-serve-client --stats` / `--metrics` at any time.
//!
//! The experiment-model flags (`--quick`, `--accesses`, cache and
//! streaming flags) mean exactly what they mean on `stms-experiments`; a
//! daemon and a one-shot run configured alike produce byte-identical
//! figure bytes. That includes `--replay-pipeline auto` (serial streaming
//! on a single-hardware-thread box, depth 2 otherwise) and
//! `--calibrate-from DIR`, which rescales the daemon's job-cost model once
//! at startup from the per-job timings sealed in prior shard manifests —
//! every request served afterwards schedules its pool with the calibrated
//! longest-predicted-first order. Scheduling changes order only, never
//! figure bytes.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use stms_serve::{ServeConfig, Server};
use stms_sim::experiments::{self, ALL_IDS};
use stms_sim::ExperimentConfig;
use stms_stats::{RunSummary, TelemetryReport};

/// Flipped by the signal handler; the accept loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::Release);
}

/// Installs `on_signal` for SIGINT and SIGTERM through the libc `signal`
/// entry point (no external crates; `std` links libc on unix).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn usage() -> &'static str {
    "usage: stms-serve --socket PATH [--quick] [--accesses N] [--threads N]\n\
     \x20                 [--trace-cache DIR] [--result-cache DIR] [--cache-verify]\n\
     \x20                 [--stream-traces] [--replay-pipeline DEPTH|auto] [--decode-threads N]\n\
     \x20                 [--trace-codec v2|v3] [--metrics-out FILE] [--calibrate-from DIR]\n\
     \x20                 [--max-active N] [--max-queue N] [--read-timeout-ms MS]"
}

fn parse_args(args: &[String]) -> Result<(ServeConfig, Option<PathBuf>, Option<PathBuf>), String> {
    let mut socket: Option<PathBuf> = None;
    let mut cfg = ExperimentConfig::scaled();
    let mut accesses: Option<usize> = None;
    let mut config = ServeConfig::new(PathBuf::new(), cfg.clone());
    let mut decode_threads: Option<usize> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut calibrate_from: Option<PathBuf> = None;

    let mut i = 0;
    let value_of = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    let number_of = |i: &mut usize, flag: &str| -> Result<usize, String> {
        let v = value_of(i, flag)?;
        v.parse()
            .map_err(|_| format!("{flag} requires a number, got `{v}`"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => socket = Some(value_of(&mut i, "--socket")?.into()),
            "--quick" => cfg = ExperimentConfig::quick(),
            "--accesses" => {
                let n = number_of(&mut i, "--accesses")?;
                if n == 0 {
                    return Err("--accesses must be non-zero".into());
                }
                accesses = Some(n);
            }
            "--threads" => {
                config.threads = number_of(&mut i, "--threads")?;
                if config.threads == 0 {
                    return Err("--threads must be non-zero".into());
                }
            }
            "--trace-cache" => {
                config.caches.trace_dir = Some(value_of(&mut i, "--trace-cache")?.into());
            }
            "--result-cache" => {
                config.caches.result_dir = Some(value_of(&mut i, "--result-cache")?.into());
            }
            "--cache-verify" => config.caches.verify = true,
            "--stream-traces" => config.caches.stream_traces = true,
            "--replay-pipeline" => {
                let v = value_of(&mut i, "--replay-pipeline")?;
                if v == "auto" {
                    // Same policy as stms-experiments: on a single
                    // hardware thread the stages cannot overlap, so fall
                    // back to serial streaming; otherwise the minimal
                    // depth that overlaps prefetch with simulation.
                    let parallelism = std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1);
                    if parallelism <= 1 {
                        config.caches.stream_traces = true;
                    } else {
                        config.caches.pipeline_depth = 2;
                    }
                } else {
                    let depth: usize = v.parse().map_err(|_| {
                        format!("--replay-pipeline requires a depth or `auto`, got `{v}`")
                    })?;
                    if depth < 2 {
                        return Err(format!(
                            "--replay-pipeline depth must be at least 2, got {depth}"
                        ));
                    }
                    config.caches.pipeline_depth = depth;
                }
            }
            "--decode-threads" => {
                let n = number_of(&mut i, "--decode-threads")?;
                if n == 0 {
                    return Err("--decode-threads must be non-zero".into());
                }
                decode_threads = Some(n);
            }
            "--trace-codec" => {
                let v = value_of(&mut i, "--trace-codec")?;
                config.caches.trace_codec = match v.as_str() {
                    "v2" => stms_types::TraceCodec::V2,
                    "v3" => stms_types::TraceCodec::V3,
                    other => return Err(format!("--trace-codec must be v2 or v3, got `{other}`")),
                };
            }
            "--metrics-out" => {
                metrics_out = Some(value_of(&mut i, "--metrics-out")?.into());
            }
            "--calibrate-from" => {
                calibrate_from = Some(value_of(&mut i, "--calibrate-from")?.into());
            }
            "--max-active" => {
                config.max_active = number_of(&mut i, "--max-active")?;
                if config.max_active == 0 {
                    return Err("--max-active must be non-zero".into());
                }
            }
            "--max-queue" => config.max_queue = number_of(&mut i, "--max-queue")?,
            "--read-timeout-ms" => {
                let ms = number_of(&mut i, "--read-timeout-ms")?;
                if ms == 0 {
                    return Err("--read-timeout-ms must be non-zero".into());
                }
                config.read_timeout = Duration::from_millis(ms as u64);
                config.write_timeout = Duration::from_millis(ms as u64);
            }
            flag => return Err(format!("unknown flag `{flag}`")),
        }
        i += 1;
    }
    let Some(socket) = socket else {
        return Err("--socket PATH is required".into());
    };
    if let Some(n) = accesses {
        cfg = cfg.with_accesses(n);
    }
    cfg.sim.validate().map_err(|e| e.to_string())?;
    if let Some(n) = decode_threads {
        if config.caches.pipeline_depth == 0 {
            return Err("--decode-threads is only meaningful with --replay-pipeline DEPTH".into());
        }
        config.caches.decode_threads = n;
    }
    config.socket = socket;
    config.cfg = cfg;
    Ok((config, metrics_out, calibrate_from))
}

/// Fits the campaign's job-cost model from pre-loaded manifest timings,
/// matching records against the full experiment grid (a daemon may be
/// asked for any figure). Returns the fit for the startup banner.
fn calibrate_campaign(
    campaign: &stms_sim::campaign::Campaign,
    timings: &[stms_types::ShardJobTiming],
) -> stms_sim::campaign::Calibration {
    let mut jobs = Vec::new();
    for id in ALL_IDS {
        if let Some(plan) = experiments::plan_for_id(id, campaign.cfg()) {
            jobs.extend(plan.jobs().iter().cloned());
        }
    }
    let grid = stms_sim::campaign::shard::distinct_jobs(campaign.cfg(), &jobs);
    let (model, fit) = stms_sim::campaign::JobCostModel::calibrated(campaign.cfg(), &grid, timings);
    campaign.set_cost_model(model);
    fit
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let (config, metrics_out, calibrate_from) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    // Load the calibration corpus before binding, so a bad directory is a
    // clean usage error that leaves no stale socket file behind.
    let timings = match &calibrate_from {
        Some(dir) => match stms_sim::campaign::cost::load_timings(dir) {
            Ok(timings) => Some(timings),
            Err(message) => {
                eprintln!("error: --calibrate-from: {message}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    install_signal_handlers();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind serving socket: {e}");
            return ExitCode::from(2);
        }
    };
    // Fit before the first request so every served run schedules with the
    // calibrated model.
    let mut calibration = None;
    if let (Some(timings), Some(dir)) = (&timings, &calibrate_from) {
        let fit = calibrate_campaign(server.campaign(), timings);
        eprintln!(
            "calibrated cost model on {} timings from {}",
            fit.samples,
            dir.display()
        );
        calibration = Some(fit);
    }
    eprintln!("serving on {}", server.socket_path().display());
    let report = server.run_until(|| STOP.load(Ordering::Acquire));
    let mut summary = RunSummary::new();
    summary.push_serve(report);
    // The scheduling line describes the daemon's most recent served run —
    // later requests overwrite earlier logs, same as cache counters are
    // cumulative while the sched log is per-run.
    if let Some(mut sched) = server.campaign().take_sched_report() {
        if let Some(fit) = &calibration {
            sched.calibration_samples = Some(fit.samples);
            sched.calibration_error_milli = Some(fit.error_milli);
        }
        summary.push_sched(sched);
    }
    stms_sim::campaign::push_cache_reports(&mut summary, server.campaign());
    // Same registry the daemon answered to `--metrics` probes: cumulative
    // since start, so the shutdown block is the final (largest) snapshot.
    let snapshot = stms_obs::snapshot();
    if !snapshot.is_empty() {
        summary.push_telemetry(TelemetryReport {
            lines: snapshot.render_lines(),
        });
    }
    let mut failed = false;
    if let Some(path) = &metrics_out {
        match std::fs::write(path, snapshot.to_json_string()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!(
                    "error: cannot write metrics snapshot `{}`: {e}",
                    path.display()
                );
                failed = true;
            }
        }
    }
    eprint!("{}", summary.render());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
