//! Test/CLI client for the `stms-serve` daemon.
//!
//! ```text
//! stms-serve-client --socket PATH [--figures ID[,ID...]] [--format text|json]
//!                   [--ping | --stats | --metrics | --shutdown]
//!                   [--stress N] [--disconnect-after K]
//! ```
//!
//! The default mode sends one `Run` request and prints the streamed figure
//! bodies (text) or the closing JSON document exactly as the one-shot
//! `stms-experiments` CLI would print them, so `cmp` against its stdout is
//! the byte-identity check. Figure errors go to stderr as `error: …`.
//!
//! `--stats` prints the daemon's serving counters as `name value` lines;
//! `--metrics` prints the daemon's full telemetry registry as the same
//! versioned JSON document `--metrics-out` writes. Both are answered
//! without taking an admission slot, so probing a saturated daemon never
//! competes with run traffic, and both report values cumulative since
//! daemon start (probes are monotone).
//!
//! `--stress N` opens N concurrent connections issuing the *same* request
//! (released together), asserts every connection streamed byte-identical
//! frames, and prints one copy — a shell-level dedup/consistency probe.
//!
//! `--disconnect-after K` drops the connection after reading K response
//! frames without sending the protocol's closing handshake, to exercise
//! the server's abandoned-request reclamation from outside.
//!
//! # Exit codes
//!
//! * `0` — success (`Done` with zero failures, or the probe succeeded);
//! * `1` — the run reported failed figures, the stream ended early, or a
//!   stress replica diverged;
//! * `2` — usage errors, connection failures, or `Rejected`.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Barrier;
use std::time::Duration;
use stms_types::wire::{self, Request, RequestFormat, Response};

enum Mode {
    Run,
    Ping,
    Stats,
    Metrics,
    Shutdown,
}

struct Options {
    socket: PathBuf,
    figures: Vec<String>,
    format: RequestFormat,
    mode: Mode,
    stress: usize,
    disconnect_after: Option<usize>,
    timeout: Duration,
}

fn usage() -> &'static str {
    "usage: stms-serve-client --socket PATH [--figures ID[,ID...]] [--format text|json]\n\
     \x20                        [--ping | --stats | --metrics | --shutdown]\n\
     \x20                        [--stress N] [--disconnect-after K] [--timeout-ms MS]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut socket: Option<PathBuf> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut format = RequestFormat::Text;
    let mut mode = Mode::Run;
    let mut stress = 1;
    let mut disconnect_after = None;
    let mut timeout = Duration::from_secs(600);

    let mut i = 0;
    let value_of = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => socket = Some(value_of(&mut i, "--socket")?.into()),
            "--figures" => {
                let v = value_of(&mut i, "--figures")?;
                figures.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                );
            }
            "--format" => {
                let v = value_of(&mut i, "--format")?;
                format = match v.as_str() {
                    "text" => RequestFormat::Text,
                    "json" => RequestFormat::Json,
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
            }
            "--ping" => mode = Mode::Ping,
            "--stats" => mode = Mode::Stats,
            "--metrics" => mode = Mode::Metrics,
            "--shutdown" => mode = Mode::Shutdown,
            "--stress" => {
                let v = value_of(&mut i, "--stress")?;
                stress = v
                    .parse()
                    .map_err(|_| format!("--stress requires a count, got `{v}`"))?;
                if stress == 0 {
                    return Err("--stress must be non-zero".into());
                }
            }
            "--disconnect-after" => {
                let v = value_of(&mut i, "--disconnect-after")?;
                disconnect_after = Some(
                    v.parse()
                        .map_err(|_| format!("--disconnect-after requires a count, got `{v}`"))?,
                );
            }
            "--timeout-ms" => {
                let v = value_of(&mut i, "--timeout-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--timeout-ms requires a number, got `{v}`"))?;
                timeout = Duration::from_millis(ms);
            }
            id if !id.starts_with("--") => figures.push(id.to_string()),
            flag => return Err(format!("unknown flag `{flag}`")),
        }
        i += 1;
    }
    let Some(socket) = socket else {
        return Err("--socket PATH is required".into());
    };
    Ok(Options {
        socket,
        figures,
        format,
        mode,
        stress,
        disconnect_after,
        timeout,
    })
}

fn connect(opts: &Options) -> Result<UnixStream, String> {
    let stream = UnixStream::connect(&opts.socket)
        .map_err(|e| format!("cannot connect to {}: {e}", opts.socket.display()))?;
    let _ = stream.set_read_timeout(Some(opts.timeout));
    let _ = stream.set_write_timeout(Some(opts.timeout));
    Ok(stream)
}

/// The outcome of one full `Run` exchange: every response frame, in order.
fn run_once(opts: &Options) -> Result<Vec<Response>, String> {
    let mut stream = connect(opts)?;
    let request = Request::Run {
        figures: opts.figures.clone(),
        format: opts.format,
    };
    wire::send_request(&mut stream, &request).map_err(|e| format!("cannot send request: {e}"))?;
    let mut frames = Vec::new();
    loop {
        match wire::recv_response(&mut stream) {
            Ok(Some(response)) => {
                let last = matches!(response, Response::Done { .. } | Response::Rejected { .. });
                frames.push(response);
                if let Some(limit) = opts.disconnect_after {
                    if frames.len() >= limit {
                        // Abandon rudely: no handshake, just vanish.
                        drop(stream);
                        return Ok(frames);
                    }
                }
                if last {
                    return Ok(frames);
                }
            }
            Ok(None) => return Err("server closed the stream before Done".into()),
            Err(e) => return Err(format!("cannot read response: {e}")),
        }
    }
}

/// Prints a frame stream the way the one-shot CLI prints its run, and
/// reports `(failed_figures, rejected)`.
///
/// In JSON mode only the closing `Document` goes to stdout: the per-figure
/// frames still stream (they carry progress), but the CLI prints nothing
/// until its document either, and stdout must stay `cmp`-identical.
fn print_frames(frames: &[Response], format: RequestFormat) -> (u32, bool) {
    let mut failed = 0;
    let mut rejected = false;
    for frame in frames {
        match frame {
            Response::Figure { body, .. } => {
                // Matches the CLI's `println!("{}", result.render())`.
                if format == RequestFormat::Text {
                    println!("{body}");
                }
            }
            Response::FigureError { message, .. } => {
                eprintln!("error: {message}");
            }
            Response::Document { body } => println!("{body}"),
            Response::Done { failed: f, .. } => failed = *f,
            Response::Rejected { reason } => {
                eprintln!("rejected: {reason}");
                rejected = true;
            }
            other => eprintln!("unexpected frame: {other:?}"),
        }
    }
    (failed, rejected)
}

fn run_mode(opts: &Options) -> ExitCode {
    if opts.stress > 1 {
        return stress_mode(opts);
    }
    match run_once(opts) {
        Ok(frames) => {
            let complete = matches!(
                frames.last(),
                Some(Response::Done { .. } | Response::Rejected { .. })
            );
            let (failed, rejected) = print_frames(&frames, opts.format);
            if rejected {
                ExitCode::from(2)
            } else if failed > 0 || (!complete && opts.disconnect_after.is_none()) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// N concurrent identical requests, released together; every replica must
/// stream byte-identical frames, of which exactly one copy is printed.
fn stress_mode(opts: &Options) -> ExitCode {
    let barrier = Barrier::new(opts.stress);
    let outcomes: Vec<Result<Vec<Response>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.stress)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    run_once(opts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut reference: Option<&Vec<Response>> = None;
    for outcome in &outcomes {
        match outcome {
            Ok(frames) => match reference {
                None => reference = Some(frames),
                Some(expect) => {
                    if frames != expect {
                        eprintln!("error: stress replicas diverged");
                        return ExitCode::FAILURE;
                    }
                }
            },
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        }
    }
    let frames = reference.expect("stress count is non-zero");
    let (failed, rejected) = print_frames(frames, opts.format);
    eprintln!("stress: {} identical response streams", opts.stress);
    if rejected {
        ExitCode::from(2)
    } else if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Sends one non-run request and expects one response frame.
fn simple_exchange(opts: &Options, request: Request) -> Result<Response, String> {
    let mut stream = connect(opts)?;
    wire::send_request(&mut stream, &request).map_err(|e| format!("cannot send request: {e}"))?;
    match wire::recv_response(&mut stream) {
        Ok(Some(response)) => Ok(response),
        Ok(None) => Err("server closed the connection without answering".into()),
        Err(e) => Err(format!("cannot read response: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match opts.mode {
        Mode::Run => run_mode(&opts),
        Mode::Ping => match simple_exchange(&opts, Request::Ping) {
            Ok(Response::Pong) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("error: unexpected answer to ping: {other:?}");
                ExitCode::FAILURE
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Mode::Stats => match simple_exchange(&opts, Request::Stats) {
            Ok(Response::Stats(counters)) => {
                let mut out = String::new();
                for (name, value) in [
                    ("requests", counters.requests),
                    ("accepted", counters.accepted),
                    ("rejected", counters.rejected),
                    ("cancelled", counters.cancelled),
                    ("figures_streamed", counters.figures_streamed),
                    ("jobs_executed", counters.jobs_executed),
                    ("jobs_shared", counters.jobs_shared),
                    ("jobs_cached", counters.jobs_cached),
                    ("traces_generated", counters.traces_generated),
                    ("stream_replays", counters.stream_replays),
                    ("stream_fallbacks", counters.stream_fallbacks),
                    ("active_requests", counters.active_requests),
                    ("queued_requests", counters.queued_requests),
                ] {
                    out.push_str(&format!("{name} {value}\n"));
                }
                print!("{out}");
                let _ = std::io::stdout().flush();
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("error: unexpected answer to stats: {other:?}");
                ExitCode::FAILURE
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Mode::Metrics => match simple_exchange(&opts, Request::Metrics) {
            Ok(Response::Metrics { json }) => {
                // The document already ends with a newline.
                print!("{json}");
                let _ = std::io::stdout().flush();
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("error: unexpected answer to metrics: {other:?}");
                ExitCode::FAILURE
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Mode::Shutdown => match simple_exchange(&opts, Request::Shutdown) {
            Ok(Response::ShuttingDown) => {
                println!("shutting down");
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("error: unexpected answer to shutdown: {other:?}");
                ExitCode::FAILURE
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
    }
}
