//! Resident campaign daemon for the STMS reproduction.
//!
//! `stms-serve` keeps one [`Campaign`] — trace store, result memo, job
//! pool and in-flight dedup table — alive across many figure requests, so
//! interactive clients pay the trace-generation and replay cost exactly
//! once per distinct cell however many of them ask, and concurrently.
//!
//! The daemon listens on a local Unix socket speaking the length-prefixed,
//! sealed-envelope frame protocol of [`stms_types::wire`]: one
//! [`Request`] per connection, answered by a stream of
//! [`Response`] frames. A `Run` request goes through the
//! serving lifecycle:
//!
//! 1. **admit** — the [`Gate`] bounds concurrent runs (`max_active`) and
//!    the waiting line (`max_queue`); queueing is ticket-FIFO, so runs are
//!    served in arrival order and an abandoned waiter never blocks the
//!    line. Past capacity the request is refused immediately with
//!    [`Response::Rejected`], never silently
//!    stalled.
//! 2. **dedup** — every job of the run joins the campaign's singleflight
//!    table: a cell some other client is executing *right now* is shared,
//!    a cell finished earlier is a result-memo hit, and only genuinely new
//!    cells replay. The memo defaults to the in-memory tier
//!    ([`CampaignCaches::result_memory`]) so deduplication works with no
//!    cache directory configured.
//! 3. **stream** — figures are emitted as soon as their own jobs finish
//!    (identical order and bytes to the one-shot CLI), each as a
//!    [`Response::Figure`] frame; JSON runs close
//!    with the complete CLI document.
//! 4. **reclaim** — a watcher thread notices the client hanging up
//!    mid-run and fires the request's [`CancelToken`]: jobs not yet on a
//!    worker resolve as cancelled without simulating, the gate slot frees,
//!    and jobs already executing finish into the memo for everyone else.
//!
//! The server is deliberately synchronous: one OS thread per connection
//! (bounded by the gate), blocking socket I/O with timeouts, and
//! `std`-only primitives, which keeps the concurrency story auditable and
//! the binary dependency-free.
//!
//! # Counter semantics
//!
//! Every serving counter — [`wire::ServeCounters`] answered to
//! [`wire::Request::Stats`], the `serve:` line of the shutdown summary,
//! and the telemetry registry answered to [`wire::Request::Metrics`] — is
//! **cumulative since daemon start and never reset**. A `Stats` probe, the
//! shutdown report, and a `Metrics` snapshot all read the same monotone
//! counters, so any two probes `t1 < t2` satisfy `counter(t1) <=
//! counter(t2)` and the difference is exactly the traffic in between. The
//! only non-cumulative fields are the instantaneous gate depths
//! (`active_requests` / `queued_requests`), which report the line as it
//! stands at probe time.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashSet;
use std::io::{self, ErrorKind, Read as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use stms_sim::campaign::{Campaign, CampaignCaches};
use stms_sim::experiments::{self, ALL_IDS};
use stms_sim::{CancelToken, ExperimentConfig, FigurePlan};
use stms_stats::ServeReport;
use stms_types::wire::{self, Request, RequestFormat, Response, ServeCounters};

/// How often blocked loops (accept poll, gate waits, watcher reads) recheck
/// their exit conditions.
const POLL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Everything needed to bring up a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// Experiment configuration shared by every request.
    pub cfg: ExperimentConfig,
    /// Campaign worker threads (the replay pool, not connection handlers).
    pub threads: usize,
    /// Cache configuration for the shared campaign. [`ServeConfig::new`]
    /// turns on the in-memory result memo so in-flight dedup composes with
    /// memoization even without any cache directory.
    pub caches: CampaignCaches,
    /// Run requests allowed to execute concurrently.
    pub max_active: usize,
    /// Run requests allowed to wait for a slot; arrivals past this are
    /// refused with [`wire::Response::Rejected`].
    pub max_queue: usize,
    /// Socket read timeout (bounds how long a silent client can hold a
    /// handler thread).
    pub read_timeout: Duration,
    /// Socket write timeout (bounds how long a stalled client can hold a
    /// handler thread mid-stream).
    pub write_timeout: Duration,
}

impl ServeConfig {
    /// A serving configuration with library defaults: in-memory result
    /// memo, four concurrent runs, a sixteen-deep queue, ten-second socket
    /// timeouts.
    pub fn new(socket: impl Into<PathBuf>, cfg: ExperimentConfig) -> Self {
        ServeConfig {
            socket: socket.into(),
            cfg,
            threads: stms_sim::JobPool::default_threads(),
            caches: CampaignCaches {
                result_memory: true,
                ..CampaignCaches::default()
            },
            max_active: 4,
            max_queue: 16,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GateState {
    /// Runs currently holding a slot.
    active: usize,
    /// Waiters currently in line.
    queued: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Lowest ticket not yet admitted; tickets are admitted in order.
    serving: u64,
    /// Tickets whose waiter gave up; skipped when they reach the front.
    abandoned: HashSet<u64>,
}

/// Ticket-FIFO admission control: at most `max_active` concurrent holders,
/// at most `max_queue` waiters, strict arrival order, and waiters that give
/// up (client disconnect, server shutdown) leave the line without ever
/// blocking the tickets behind them.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    max_queue: usize,
}

/// Outcome of [`Gate::admit`].
#[derive(Debug)]
pub enum Admission<'a> {
    /// A slot was granted; hold the permit for the duration of the run.
    Admitted(Permit<'a>),
    /// The waiting line was full; the caller must refuse the request.
    Rejected,
    /// The caller's `cancelled` predicate fired while waiting in line.
    Abandoned,
}

/// An occupied gate slot; dropping it frees the slot and wakes the line.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.active -= 1;
        drop(state);
        self.gate.cv.notify_all();
    }
}

impl Gate {
    /// A gate admitting `max_active` concurrent holders over a
    /// `max_queue`-deep waiting line.
    pub fn new(max_active: usize, max_queue: usize) -> Self {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_queue,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Requests a slot, waiting in ticket order. `cancelled` is polled
    /// while waiting; when it returns `true` the waiter leaves the line
    /// ([`Admission::Abandoned`]) and its ticket is skipped.
    ///
    /// Admission is instrumented: every admitted request records its wait
    /// into the `serve.gate.wait_ns` histogram, and the high-water line
    /// depth and slot occupancy go to the `serve.gate.queued` /
    /// `serve.gate.active` gauges.
    pub fn admit(&self, cancelled: impl Fn() -> bool) -> Admission<'_> {
        let waited = stms_obs::is_enabled().then(std::time::Instant::now);
        let note_admitted = |waited: Option<std::time::Instant>| {
            if let Some(started) = waited {
                let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                stms_obs::histogram("serve.gate.wait_ns").record(nanos);
            }
        };
        let mut state = self.lock();
        if waited.is_some() {
            stms_obs::gauge("serve.gate.active").record_max(state.active as u64);
            stms_obs::gauge("serve.gate.queued").record_max(state.queued as u64);
        }
        // Fast path: no line and a free slot — no ticket needed.
        if state.queued == 0 && state.active < self.max_active {
            state.active += 1;
            note_admitted(waited);
            return Admission::Admitted(Permit { gate: self });
        }
        if state.queued >= self.max_queue {
            return Admission::Rejected;
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queued += 1;
        if waited.is_some() {
            stms_obs::gauge("serve.gate.queued").record_max(state.queued as u64);
        }
        loop {
            // Abandoned tickets at the front of the line never block it.
            loop {
                let front = state.serving;
                if !state.abandoned.remove(&front) {
                    break;
                }
                state.serving += 1;
            }
            if state.serving == ticket && state.active < self.max_active {
                state.serving += 1;
                state.queued -= 1;
                state.active += 1;
                drop(state);
                // Another waiter may now be at the front with a free slot.
                self.cv.notify_all();
                note_admitted(waited);
                return Admission::Admitted(Permit { gate: self });
            }
            if cancelled() {
                state.queued -= 1;
                state.abandoned.insert(ticket);
                drop(state);
                self.cv.notify_all();
                return Admission::Abandoned;
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, POLL)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Current `(active, queued)` depths, for stats reporting.
    pub fn depths(&self) -> (usize, usize) {
        let state = self.lock();
        (state.active, state.queued)
    }
}

// ---------------------------------------------------------------------------
// Shared server state.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    figures_streamed: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    campaign: Campaign,
    cfg: ExperimentConfig,
    gate: Gate,
    stats: ServeStats,
    shutdown: AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
}

impl Shared {
    /// The daemon's serving counters. Every field is cumulative since
    /// daemon start except the two instantaneous gate depths; the shutdown
    /// summary ([`Shared::report`]) is derived from the same values, so
    /// `--stats` probes and the final `serve:` line can never disagree
    /// about the traffic they both saw.
    fn counters(&self) -> ServeCounters {
        let flights = self.campaign.flight_stats();
        let caches = self.campaign.cache_stats();
        let (active, queued) = self.gate.depths();
        ServeCounters {
            requests: self.stats.requests.load(Ordering::Relaxed),
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            figures_streamed: self.stats.figures_streamed.load(Ordering::Relaxed),
            jobs_executed: flights.executed,
            jobs_shared: flights.shared,
            jobs_cached: caches.result.map_or(0, |r| r.total_hits()),
            traces_generated: caches.trace.generated,
            stream_replays: caches.trace.stream_replays,
            stream_fallbacks: caches.trace.stream_fallbacks,
            active_requests: active as u64,
            queued_requests: queued as u64,
        }
    }

    fn report(&self) -> ServeReport {
        let counters = self.counters();
        ServeReport {
            requests: counters.requests,
            accepted: counters.accepted,
            rejected: counters.rejected,
            cancelled: counters.cancelled,
            figures_streamed: counters.figures_streamed,
            jobs_executed: counters.jobs_executed,
            jobs_shared: counters.jobs_shared,
            jobs_cached: counters.jobs_cached,
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// The resident campaign daemon: bind once, then [`Server::run_until`].
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
    socket: PathBuf,
}

impl Server {
    /// Binds the serving socket and brings up the shared campaign.
    ///
    /// A leftover socket file from a crashed daemon is removed if nothing
    /// answers on it; a *live* daemon on the same path is an
    /// [`ErrorKind::AddrInUse`] error.
    ///
    /// # Errors
    ///
    /// Socket binding failures and cache-directory creation failures.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        if config.socket.exists() {
            match UnixStream::connect(&config.socket) {
                Ok(_) => {
                    return Err(io::Error::new(
                        ErrorKind::AddrInUse,
                        format!("a daemon is already serving on {}", config.socket.display()),
                    ));
                }
                // Dead socket file: reclaim the path.
                Err(_) => std::fs::remove_file(&config.socket)?,
            }
        }
        let listener = UnixListener::bind(&config.socket)?;
        // Accept must poll so shutdown (signal or Shutdown request) is
        // noticed even when no client ever connects again.
        listener.set_nonblocking(true)?;
        let campaign = Campaign::with_caches(config.cfg.clone(), config.threads, config.caches)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                campaign,
                cfg: config.cfg,
                gate: Gate::new(config.max_active, config.max_queue),
                stats: ServeStats::default(),
                shutdown: AtomicBool::new(false),
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
            }),
            socket: config.socket,
        })
    }

    /// The path this server is listening on.
    pub fn socket_path(&self) -> &Path {
        &self.socket
    }

    /// The shared campaign, for accounting after (or during) a run — e.g.
    /// [`Campaign::flight_stats`] proves from the outside that concurrent
    /// identical requests shared one execution.
    pub fn campaign(&self) -> &Campaign {
        &self.shared.campaign
    }

    /// Serves until `stop` returns `true` or a client sends
    /// [`wire::Request::Shutdown`], then drains in-flight handlers, removes
    /// the socket file, and reports what was served.
    pub fn run_until(&self, stop: impl Fn() -> bool) -> ServeReport {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !stop() && !self.shared.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || handle(&shared, stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                // Transient accept failures must not kill the daemon.
                Err(_) => std::thread::sleep(POLL),
            }
            handlers.retain(|h| !h.is_finished());
        }
        // Stop admitting: waiters in the gate see the flag and abandon.
        self.shared.shutdown.store(true, Ordering::Release);
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.socket);
        self.shared.report()
    }
}

// ---------------------------------------------------------------------------
// Per-connection handling.
// ---------------------------------------------------------------------------

/// Sends one response frame, reporting whether the client is still there.
fn send(stream: &mut UnixStream, response: &Response) -> bool {
    wire::send_response(stream, response).is_ok()
}

fn handle(shared: &Shared, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let request = match wire::recv_request(&mut stream) {
        Ok(Some(request)) => request,
        // Clean connect-and-leave probe (socket liveness checks do this).
        Ok(None) => return,
        Err(e) => {
            // Malformed or oversized frame: refuse loudly, fail closed.
            let _ = send(
                &mut stream,
                &Response::Rejected {
                    reason: format!("bad request frame: {e}"),
                },
            );
            return;
        }
    };
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Ping => {
            let _ = send(&mut stream, &Response::Pong);
        }
        Request::Stats => {
            let _ = send(&mut stream, &Response::Stats(shared.counters()));
        }
        Request::Metrics => {
            // Like Stats: answered directly, never through the gate, so a
            // dashboard polling a saturated daemon is never queued behind
            // the very runs it is trying to observe.
            let json = stms_obs::snapshot().to_json_string();
            let _ = send(&mut stream, &Response::Metrics { json });
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            let _ = send(&mut stream, &Response::ShuttingDown);
        }
        Request::Run { figures, format } => run_request(shared, stream, figures, format),
    }
}

/// Expands a requested figure selection exactly like the CLI: empty or
/// containing `all` means every known experiment; an unknown id refuses the
/// whole request before any admission.
fn plan_selection(cfg: &ExperimentConfig, figures: &[String]) -> Result<Vec<FigurePlan>, String> {
    let all: Vec<String>;
    let selected: &[String] = if figures.is_empty() || figures.iter().any(|id| id == "all") {
        all = ALL_IDS.iter().map(|s| s.to_string()).collect();
        &all
    } else {
        figures
    };
    selected
        .iter()
        .map(|id| {
            experiments::plan_for_id(id, cfg)
                .ok_or_else(|| format!("unknown experiment `{id}` (known: {})", ALL_IDS.join(", ")))
        })
        .collect()
}

/// Watches the connection for the client hanging up (or violating the
/// one-request protocol) while a run streams, firing `cancel` so the
/// campaign skips the run's pending jobs. `done` is the handler saying the
/// response is complete; after that nothing is cancelled.
fn spawn_watcher(
    stream: &UnixStream,
    cancel: CancelToken,
    done: Arc<AtomicBool>,
) -> Option<JoinHandle<()>> {
    let mut watch = stream.try_clone().ok()?;
    Some(std::thread::spawn(move || {
        let mut byte = [0u8; 1];
        loop {
            if done.load(Ordering::Acquire) {
                return;
            }
            match watch.read(&mut byte) {
                // EOF — the client hung up; anything else after the request
                // violates the one-request-per-connection protocol. Either
                // way the run is abandoned.
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(_) => break,
            }
        }
        if !done.load(Ordering::Acquire) {
            cancel.cancel();
        }
    }))
}

fn run_request(
    shared: &Shared,
    mut stream: UnixStream,
    figures: Vec<String>,
    format: RequestFormat,
) {
    let plans = match plan_selection(&shared.cfg, &figures) {
        Ok(plans) => plans,
        Err(reason) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = send(&mut stream, &Response::Rejected { reason });
            return;
        }
    };
    let total = plans.len() as u32;

    let cancel = CancelToken::new();
    let done = Arc::new(AtomicBool::new(false));
    let watcher = spawn_watcher(&stream, cancel.clone(), Arc::clone(&done));

    let admission = shared
        .gate
        .admit(|| cancel.is_cancelled() || shared.shutdown.load(Ordering::Acquire));
    let _permit = match admission {
        Admission::Admitted(permit) => permit,
        Admission::Rejected => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = send(
                &mut stream,
                &Response::Rejected {
                    reason: "server at capacity (queue full); retry later".to_string(),
                },
            );
            finish_watcher(&stream, watcher, &done);
            return;
        }
        Admission::Abandoned => {
            shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            finish_watcher(&stream, watcher, &done);
            return;
        }
    };
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);

    let mut index: u32 = 0;
    let mut failed: u32 = 0;
    let mut streamed: u64 = 0;
    let mut client_gone = false;
    let mut json_items: Vec<serde_json::Value> = Vec::new();
    shared
        .campaign
        .run_figures_streaming_cancellable(plans, &cancel, |figure| {
            if format == RequestFormat::Json {
                // Same helper as the CLI sink — served JSON documents are
                // byte-identical to `--format json` by construction.
                json_items.push(experiments::figure_json_item(&figure));
            }
            let frame = match &figure {
                Ok(result) => Response::Figure {
                    index,
                    id: result.id.clone(),
                    body: result.render(),
                },
                Err(err) => {
                    failed += 1;
                    Response::FigureError {
                        index,
                        id: err.figure.clone(),
                        message: err.to_string(),
                    }
                }
            };
            index += 1;
            if !client_gone {
                if send(&mut stream, &frame) {
                    streamed += 1;
                } else {
                    // The client is gone: stop writing and skip the run's
                    // remaining jobs so the gate slot frees promptly.
                    client_gone = true;
                    cancel.cancel();
                }
            }
        });
    // Sampled here, not after the closing frames: once every figure is out
    // the client may read `Done` and hang up at once, and the watcher can
    // observe that EOF (and fire the token) before `finish_watcher` joins
    // it. Only a cancellation that arrived while the run still streamed —
    // or a failed closing send below — is a genuine abandonment.
    let run_cancelled = cancel.is_cancelled();

    if !client_gone {
        if format == RequestFormat::Json {
            let body = experiments::figures_json_document(json_items);
            client_gone = !send(&mut stream, &Response::Document { body });
        }
        if !client_gone {
            let _ = send(
                &mut stream,
                &Response::Done {
                    figures: total,
                    failed,
                },
            );
        }
    }
    shared
        .stats
        .figures_streamed
        .fetch_add(streamed, Ordering::Relaxed);
    if run_cancelled || client_gone {
        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    finish_watcher(&stream, watcher, &done);
}

/// Marks the response complete and collects the watcher thread. The read
/// shutdown wakes a watcher blocked on its poll immediately; without it the
/// join would wait out one read-timeout tick.
fn finish_watcher(stream: &UnixStream, watcher: Option<JoinHandle<()>>, done: &AtomicBool) {
    done.store(true, Ordering::Release);
    let _ = stream.shutdown(std::net::Shutdown::Read);
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_capacity_and_frees_on_drop() {
        let gate = Gate::new(2, 4);
        let a = gate.admit(|| false);
        let b = gate.admit(|| false);
        assert!(matches!(a, Admission::Admitted(_)));
        assert!(matches!(b, Admission::Admitted(_)));
        assert_eq!(gate.depths(), (2, 0));
        drop(a);
        assert_eq!(gate.depths(), (1, 0));
        // The freed slot is immediately grantable.
        assert!(matches!(gate.admit(|| false), Admission::Admitted(_)));
    }

    #[test]
    fn gate_rejects_when_the_line_is_full() {
        let gate = Gate::new(1, 0);
        let held = gate.admit(|| false);
        assert!(matches!(held, Admission::Admitted(_)));
        // No queue slots at all: an arrival is refused, not parked.
        assert!(matches!(gate.admit(|| true), Admission::Rejected));
    }

    #[test]
    fn gate_waiter_abandons_on_cancel_without_blocking_the_line() {
        let gate = Gate::new(1, 2);
        let held = gate.admit(|| false);
        // The waiter's client is already gone: it leaves the line.
        assert!(matches!(gate.admit(|| true), Admission::Abandoned));
        assert_eq!(gate.depths(), (1, 0));
        // Its abandoned ticket must not wedge the next arrival.
        drop(held);
        assert!(matches!(gate.admit(|| false), Admission::Admitted(_)));
    }

    #[test]
    fn gate_serves_waiters_in_arrival_order() {
        let gate = Gate::new(1, 8);
        let order = Mutex::new(Vec::new());
        let held = gate.admit(|| false);
        let (gate, order) = (&gate, &order);
        std::thread::scope(|scope| {
            for waiter in 0..3 {
                // Enter the line strictly one at a time so ticket order is
                // the spawn order.
                let before = gate.depths().1;
                scope.spawn(move || {
                    let admission = gate.admit(|| false);
                    assert!(matches!(admission, Admission::Admitted(_)));
                    // max_active is 1, so pushes are serialized by the slot.
                    order.lock().unwrap().push(waiter);
                });
                while gate.depths().1 == before {
                    std::thread::yield_now();
                }
            }
            drop(held);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn plan_selection_matches_cli_semantics() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(plan_selection(&cfg, &[]).unwrap().len(), ALL_IDS.len());
        let wild = vec!["table1".to_string(), "all".to_string()];
        assert_eq!(plan_selection(&cfg, &wild).unwrap().len(), ALL_IDS.len());
        let one = vec!["fig4".to_string()];
        assert_eq!(plan_selection(&cfg, &one).unwrap().len(), 1);
        let err = plan_selection(&cfg, &["fig99".to_string()]).unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"));
    }
}
