//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! tables and figures and measure the cost of the core data structures.
//!
//! The benchmarks live in `benches/`:
//!
//! * `index_table` — lookup/update throughput of the bucketized main-memory
//!   hash index table and of the idealized LRU index (ablation of §4.3's
//!   design choice);
//! * `history_buffer` — append/read throughput of the off-chip history
//!   buffers and the underlying circular log;
//! * `cache_hierarchy` — set-associative cache accesses and end-to-end
//!   engine throughput (accesses simulated per second);
//! * `figures` — miniature versions of each paper experiment (Table 2 and
//!   Figures 4–9 style runs) so regressions in the full pipeline are caught;
//! * `campaign` — the orchestration layer: trace-store warm fetch vs cold
//!   regeneration, and job-pool batch scheduling overhead.

#![warn(missing_docs)]

use stms_sim::ExperimentConfig;
use stms_types::{CoreId, LineAddr, MemAccess, Trace, TraceMeta};
use stms_workloads::{generate, presets, WorkloadSpec};

/// Experiment configuration used by the benchmarks: the scaled system with a
/// short trace so that one iteration stays in the low milliseconds.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::quick().with_accesses(30_000)
}

/// A small but repetitive workload whose streams recur even in short traces.
pub fn bench_workload() -> WorkloadSpec {
    WorkloadSpec {
        name: "bench".into(),
        max_pool_streams: 300,
        p_repeat: 0.8,
        p_noise: 0.05,
        hot_fraction: 0.3,
        hot_lines: 400,
        mean_gap: 8,
        accesses: 30_000,
        ..presets::web_apache()
    }
}

/// Generates the benchmark trace.
pub fn bench_trace() -> Trace {
    generate(&bench_workload())
}

/// A synthetic pointer-chase trace touching `lines` distinct lines on one
/// core (used for raw cache/engine micro-benchmarks).
pub fn chase_trace(lines: u64) -> Trace {
    let mut trace = Trace::new(TraceMeta {
        workload: "chase".into(),
        cores: 1,
        seed: 1,
        footprint_lines: lines,
    });
    for i in 0..lines {
        let line = LineAddr::new((i.wrapping_mul(0x9E37_79B9)) % lines + 1_000_000);
        trace.push(
            MemAccess::read(CoreId::new(0), line)
                .with_gap(2)
                .with_dependence(i % 3 == 0),
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_nonempty_traces() {
        assert_eq!(bench_trace().len(), 30_000);
        assert_eq!(chase_trace(100).len(), 100);
        assert!(bench_config().accesses <= 30_000);
        assert!(bench_workload().validate().is_ok());
    }
}
