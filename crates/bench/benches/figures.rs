//! One benchmark per reproduced table/figure of the paper.
//!
//! Each benchmark runs the corresponding experiment function from
//! `stms-sim` at a reduced trace length (the full-scale figures are
//! regenerated with the `stms-experiments` binary; these benches exist to
//! track the cost of each experiment and to catch regressions in the
//! pipeline that produces it).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stms_bench::bench_config;
use stms_sim::experiments;

fn bench_tables(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_system_model", |b| {
        b.iter(|| black_box(experiments::table1_system(&cfg).table.row_count()))
    });
    group.bench_function("table2_mlp", |b| {
        b.iter(|| black_box(experiments::table2_mlp(&cfg).table.row_count()))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_right_published_overheads", |b| {
        b.iter(|| {
            black_box(
                experiments::fig1_right_published_overheads()
                    .table
                    .row_count(),
            )
        })
    });
    group.bench_function("fig4_potential", |b| {
        b.iter(|| black_box(experiments::fig4_potential(&cfg).table.row_count()))
    });
    group.bench_function("fig6_left_stream_length_cdf", |b| {
        b.iter(|| {
            black_box(
                experiments::fig6_left_stream_length_cdf(&cfg)
                    .table
                    .row_count(),
            )
        })
    });
    group.bench_function("fig7_traffic_breakdown", |b| {
        b.iter(|| black_box(experiments::fig7_traffic_breakdown(&cfg).table.row_count()))
    });
    group.bench_function("fig9_final_comparison", |b| {
        b.iter(|| black_box(experiments::fig9_final_comparison(&cfg).table.row_count()))
    });
    group.finish();
}

/// The sweep-style figures (1-left, 5, 6-right, 8) are substantially more
/// expensive; bench them at an even smaller scale and lower resolution by
/// running a single representative configuration each.
fn bench_sweeps(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("sweep_figures");
    group.sample_size(10);

    group.bench_function("fig1_left_entries_sweep", |b| {
        b.iter(|| black_box(experiments::fig1_left_entries_sweep(&cfg).table.row_count()))
    });
    group.bench_function("fig5_history_sweep", |b| {
        b.iter(|| black_box(experiments::fig5_history_sweep(&cfg).table.row_count()))
    });
    group.bench_function("fig5_index_sweep", |b| {
        b.iter(|| black_box(experiments::fig5_index_sweep(&cfg).table.row_count()))
    });
    group.bench_function("fig6_right_depth_loss", |b| {
        b.iter(|| black_box(experiments::fig6_right_depth_loss(&cfg).table.row_count()))
    });
    group.bench_function("fig8_sampling_sweep", |b| {
        b.iter(|| black_box(experiments::fig8_sampling_sweep(&cfg).table.row_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_sweeps);
criterion_main!(benches);
