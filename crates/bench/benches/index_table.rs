//! Micro-benchmarks of the index-table designs (§4.3): the bucketized
//! main-memory hash table used by STMS versus the idealized LRU index used by
//! the on-chip upper bound. This is the ablation behind the paper's claim
//! that hash-based lookup keeps lookup cost at a single memory access while
//! remaining cheap to manage in hardware.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stms_core::{HashIndexTable, HistoryPointer};
use stms_mem::{DramModel, SystemConfig};
use stms_prefetch::LruIndex;
use stms_types::{CoreId, Cycle, LineAddr};

fn bench_hash_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_table");
    group.sample_size(20);

    for &buckets in &[1024usize, 16 * 1024] {
        group.bench_with_input(
            BenchmarkId::new("hash_update_lookup", buckets),
            &buckets,
            |b, &buckets| {
                b.iter(|| {
                    let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
                    let mut index = HashIndexTable::new(buckets, 12, 128);
                    for i in 0..2_000u64 {
                        let line = LineAddr::new(i * 37);
                        index.update(
                            line,
                            HistoryPointer {
                                core: CoreId::new(0),
                                position: i,
                            },
                            Cycle::new(i),
                            &mut dram,
                        );
                    }
                    let mut found = 0u32;
                    for i in 0..2_000u64 {
                        let line = LineAddr::new(i * 37);
                        if index
                            .lookup(line, Cycle::new(10_000 + i), &mut dram)
                            .0
                            .is_some()
                        {
                            found += 1;
                        }
                    }
                    black_box((found, index.occupancy()))
                });
            },
        );
    }

    group.bench_function("lru_index_update_lookup", |b| {
        b.iter(|| {
            let mut index = LruIndex::new(16 * 1024);
            for i in 0..2_000u64 {
                index.insert(LineAddr::new(i * 37), i);
            }
            let mut found = 0u32;
            for i in 0..2_000u64 {
                if index.get(LineAddr::new(i * 37)).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_hash_index);
criterion_main!(benches);
