//! Benchmarks of the streaming trace pipeline: streamed vs materialized
//! replay, cold (generator-fused) and warm (chunk-framed disk tier), plus
//! the staged-pipeline matrix (serial vs depth-2 vs depth-8) on both, so
//! the chunking overhead on the per-access hot path and the pipeline's
//! overlap win are tracked release over release alongside the other BENCH
//! results. Run with `STMS_BENCH_JSON=BENCH_streaming.json` to emit the
//! committed perf artifact.

use criterion::{black_box, criterion_group, criterion_main, report_value, Criterion};
use std::path::{Path, PathBuf};
use stms_bench::bench_workload;
use stms_sim::campaign::{DiskTierConfig, TraceStore};
use stms_sim::{run_source, run_trace, ExperimentConfig, PrefetcherKind};
use stms_types::{PipelineConfig, TraceCodec, DEFAULT_CHUNK_LEN};
use stms_workloads::{generate, TraceGenerator};

const ACCESSES: usize = 30_000;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_streamed_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("streamed_replay");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick().with_accesses(ACCESSES);
    let kind = PrefetcherKind::Baseline;
    let spec = bench_workload().with_accesses(ACCESSES);
    let trace = generate(&spec);

    // The baseline the streaming path must not regress: a fully
    // materialized replay.
    group.bench_function("materialized", |b| {
        b.iter(|| black_box(run_trace(&cfg, &trace, &kind).cycles))
    });

    // The pure chunk-dispatch overhead: the same in-memory trace, replayed
    // through the chunked TraceSource path.
    group.bench_function("chunked_in_memory", |b| {
        b.iter(|| {
            let mut source = trace.chunks(DEFAULT_CHUNK_LEN);
            black_box(
                run_source(&cfg, &mut source, &kind)
                    .expect("in-memory")
                    .cycles,
            )
        })
    });

    // Cold out-of-core: generation fused with simulation in one streamed
    // pass — what a cache-less `--stream-traces` job pays.
    group.bench_function("streamed_cold_generator", |b| {
        b.iter(|| {
            let mut generator = TraceGenerator::new(&spec);
            black_box(
                run_source(&cfg, &mut generator, &kind)
                    .expect("generator")
                    .cycles,
            )
        })
    });

    // Warm disk tier: replay a sealed chunk-framed file the job never
    // fully decodes — what every warm `--stream-traces --trace-cache` job
    // pays.
    let dir = bench_dir("stream-warm");
    let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
        .expect("create bench cache dir")
        .with_streaming(true);
    let replay = |store: &TraceStore| {
        store.replay_streaming(&spec, ACCESSES, |source| {
            run_source(&cfg, source, &kind).map(|result| result.cycles)
        })
    };
    replay(&store); // populate the disk tier
    group.bench_function("streamed_warm_disk", |b| {
        b.iter(|| black_box(replay(&store)))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pipeline shapes the matrix sweeps: the serial baseline, minimum
/// double buffering, and a deep window with parallel decode.
fn pipeline_matrix() -> [(&'static str, PipelineConfig); 3] {
    [
        ("serial", PipelineConfig::serial()),
        ("depth2", PipelineConfig::with_depth(2)),
        (
            "depth8",
            PipelineConfig::with_depth(8).with_decode_threads(2),
        ),
    ]
}

fn bench_pipelined_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined_replay");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick().with_accesses(ACCESSES);
    let kind = PrefetcherKind::Baseline;
    let spec = bench_workload().with_accesses(ACCESSES);
    let replay = |store: &TraceStore| {
        store.replay_streaming(&spec, ACCESSES, |source| {
            run_source(&cfg, source, &kind).map(|result| result.cycles)
        })
    };

    // Cold: every iteration regenerates and replays in one streamed pass,
    // so the pipeline's win is generation overlapped with simulation.
    for (name, config) in pipeline_matrix() {
        let store = TraceStore::new().with_streaming(true).with_pipeline(config);
        group.bench_function(format!("cold_generator/{name}"), |b| {
            b.iter(|| black_box(replay(&store)))
        });
    }

    // Warm: every iteration re-reads the same sealed chunk-framed file, so
    // the win is read+checksum+decode overlapped with simulation.
    let dir = bench_dir("pipe-warm");
    for (name, config) in pipeline_matrix() {
        let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .expect("create bench cache dir")
            .with_streaming(true)
            .with_pipeline(config);
        replay(&store); // populate (first config) / open warm (the rest)
        group.bench_function(format!("warm_disk/{name}"), |b| {
            b.iter(|| black_box(replay(&store)))
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Total bytes of the files in `dir` (the trace tier holds exactly the
/// sealed trace files during these benches).
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Empties the trace tier so the next replay is cold again.
fn remove_trace_files(dir: &Path) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn bench_codec_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_codec");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick().with_accesses(ACCESSES);
    let kind = PrefetcherKind::Baseline;
    let spec = bench_workload().with_accesses(ACCESSES);
    let replay = |store: &TraceStore| {
        store.replay_streaming(&spec, ACCESSES, |source| {
            run_source(&cfg, source, &kind).map(|result| result.cycles)
        })
    };

    for (name, codec) in [("v2", TraceCodec::V2), ("v3", TraceCodec::V3)] {
        let dir = bench_dir(&format!("codec-{name}"));
        let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
            .expect("create bench cache dir")
            .with_streaming(true)
            .with_codec(codec);

        // Cold: every iteration generates, encodes to disk and streams the
        // fresh file straight back — the full write+read cost of the codec.
        group.bench_function(format!("cold_generator/{name}"), |b| {
            b.iter(|| {
                remove_trace_files(&dir);
                black_box(replay(&store))
            })
        });

        // Warm: the sealed file persists; every iteration pays only the
        // read+decode side.
        replay(&store); // repopulate after the cold sweep's final removal
        group.bench_function(format!("warm_disk/{name}"), |b| {
            b.iter(|| black_box(replay(&store)))
        });

        // The size artifact the timing rows trade against: v3's decode cost
        // buys this many fewer bytes read per replay.
        report_value(
            &format!("trace_codec/bytes_on_disk/{name}"),
            dir_bytes(&dir),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick().with_accesses(ACCESSES);
    let kind = PrefetcherKind::Baseline;
    let spec = bench_workload().with_accesses(ACCESSES);
    let replay = |store: &TraceStore| {
        store.replay_streaming(&spec, ACCESSES, |source| {
            run_source(&cfg, source, &kind).map(|result| result.cycles)
        })
    };

    // The most instrumented replay shape there is: warm disk tier behind
    // the staged pipeline, so every iteration crosses the stage observer
    // (prefetch/decode/stall), the simulate histogram, and the cache-tier
    // latency probes. The registry-disabled row is the same replay with
    // every record call reduced to one relaxed atomic load — the <3%
    // overhead bound CI asserts on this pair.
    let dir = bench_dir("telemetry");
    let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
        .expect("create bench cache dir")
        .with_streaming(true)
        .with_pipeline(PipelineConfig::with_depth(4));
    replay(&store); // populate the disk tier

    stms_obs::set_enabled(false);
    group.bench_function("warm_disk_pipelined/disabled", |b| {
        b.iter(|| black_box(replay(&store)))
    });
    stms_obs::set_enabled(true);
    group.bench_function("warm_disk_pipelined/instrumented", |b| {
        b.iter(|| black_box(replay(&store)))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_streamed_replay,
    bench_pipelined_replay,
    bench_codec_axis,
    bench_telemetry_overhead
);
criterion_main!(benches);
