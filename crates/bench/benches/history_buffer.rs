//! Micro-benchmarks of the history-buffer structures: the off-chip per-core
//! history with packed block writes (STMS, §4.2) and the raw circular log it
//! is built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stms_core::OffChipHistory;
use stms_mem::{DramModel, SystemConfig};
use stms_prefetch::HistoryLog;
use stms_types::{CoreId, Cycle, LineAddr};

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_buffer");
    group.sample_size(20);

    group.bench_function("offchip_append_4k", |b| {
        b.iter(|| {
            let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
            let mut history = OffChipHistory::new(4, 64 * 1024, 12);
            for i in 0..4_096u64 {
                let core = CoreId::new((i % 4) as u16);
                history.append(core, LineAddr::new(i * 3), Cycle::new(i), &mut dram);
            }
            black_box((history.appended(), dram.traffic().meta_record))
        });
    });

    group.bench_function("offchip_stream_read_4k", |b| {
        // Pre-populate once per iteration, then read the stream back in
        // blocks the way the stream engine does.
        b.iter(|| {
            let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
            let mut history = OffChipHistory::new(1, 64 * 1024, 12);
            for i in 0..4_096u64 {
                history.append(CoreId::new(0), LineAddr::new(i), Cycle::ZERO, &mut dram);
            }
            let mut pos = 0u64;
            let mut total = 0usize;
            while pos < 4_096 {
                let block = history.read_block(CoreId::new(0), pos, Cycle::new(pos), &mut dram);
                if block.addresses.is_empty() {
                    break;
                }
                total += block.addresses.len();
                pos += block.addresses.len() as u64;
            }
            black_box(total)
        });
    });

    group.bench_function("raw_log_append_read_16k", |b| {
        b.iter(|| {
            let mut log = HistoryLog::new(16 * 1024);
            for i in 0..16_384u64 {
                log.append(LineAddr::new(i ^ 0xABCD));
            }
            let run = log.read_from(8_000, 256);
            black_box(run.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_history);
criterion_main!(benches);
