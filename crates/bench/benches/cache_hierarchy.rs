//! Micro-benchmarks of the memory-hierarchy substrate: raw set-associative
//! cache accesses and end-to-end engine throughput (simulated accesses per
//! wall-clock second), which bounds how long each paper experiment takes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use stms_bench::{bench_trace, chase_trace};
use stms_core::{Stms, StmsConfig};
use stms_mem::{
    CacheConfig, CmpSimulator, NullPrefetcher, SetAssocCache, SimOptions, SystemConfig,
};
use stms_types::LineAddr;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.sample_size(20);
    group.throughput(Throughput::Elements(64 * 1024));
    group.bench_function("set_assoc_64k_accesses", |b| {
        let cfg = CacheConfig {
            capacity_bytes: 256 * 1024,
            associativity: 16,
            line_bytes: 64,
            hit_latency: 20,
        };
        b.iter(|| {
            let mut cache = SetAssocCache::new(cfg);
            let mut hits = 0u64;
            for i in 0..64 * 1024u64 {
                let line = LineAddr::new((i * 17) % 8192);
                if cache.access(line, i % 5 == 0).is_hit() {
                    hits += 1;
                } else {
                    cache.fill(line, false);
                }
            }
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    let chase = chase_trace(30_000);
    group.throughput(Throughput::Elements(chase.len() as u64));
    group.bench_function("baseline_pointer_chase", |b| {
        let sys = SystemConfig::tiny_for_tests();
        b.iter(|| {
            let result = CmpSimulator::new(&sys, SimOptions::default())
                .run(&chase, &mut NullPrefetcher::new());
            black_box(result.cycles)
        });
    });

    let trace = bench_trace();
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("stms_full_system", |b| {
        let cfg = stms_bench::bench_config();
        b.iter(|| {
            let mut stms = Stms::new(StmsConfig {
                cores: cfg.system.cores,
                ..StmsConfig::scaled_default()
            });
            let result = CmpSimulator::new(&cfg.system, cfg.sim).run(&trace, &mut stms);
            black_box(result.coverage())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cache, bench_engine);
criterion_main!(benches);
