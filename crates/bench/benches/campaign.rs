//! Benchmarks of the campaign orchestration layer: trace-store hit path vs
//! regeneration, the persistent tiers cold vs warm, and job-pool scheduling
//! overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use stms_bench::bench_workload;
use stms_sim::campaign::{Campaign, CampaignCaches, DiskTierConfig, JobPool, TraceStore};
use stms_sim::ExperimentConfig;
use stms_workloads::generate;

const ACCESSES: usize = 30_000;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stms-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_trace_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store");
    group.sample_size(10);

    // The cost the store removes: regenerating the trace for every figure
    // cell that wants it.
    group.bench_function("cold_generate", |b| {
        b.iter(|| black_box(generate(&bench_workload().with_accesses(ACCESSES)).len()))
    });

    // The cost the store adds: one map lookup and an Arc clone.
    let store = TraceStore::new();
    store.get_or_generate(&bench_workload(), ACCESSES);
    group.bench_function("warm_fetch", |b| {
        b.iter(|| black_box(store.get_or_generate(&bench_workload(), ACCESSES).len()))
    });
    group.finish();
}

fn bench_disk_tier(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store_disk");
    group.sample_size(10);

    // Cold: a fresh store on an empty directory generates and persists.
    group.bench_function("cold_generate_and_persist", |b| {
        b.iter(|| {
            let dir = bench_dir("disk-cold");
            let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
            let len = store.get_or_generate(&bench_workload(), ACCESSES).len();
            let _ = std::fs::remove_dir_all(&dir);
            black_box(len)
        })
    });

    // Warm: a fresh store (simulating a new process) decodes the persisted
    // blob instead of regenerating. The delta to `cold_generate_and_persist`
    // is what `--trace-cache` buys every later campaign process.
    let dir = bench_dir("disk-warm");
    TraceStore::with_disk_tier(DiskTierConfig::new(&dir))
        .unwrap()
        .get_or_generate(&bench_workload(), ACCESSES);
    group.bench_function("warm_load_from_disk", |b| {
        b.iter(|| {
            let store = TraceStore::with_disk_tier(DiskTierConfig::new(&dir)).unwrap();
            black_box(store.get_or_generate(&bench_workload(), ACCESSES).len())
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_campaign_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_caches");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick().with_accesses(10_000);
    let kinds = [
        stms_sim::PrefetcherKind::Baseline,
        stms_sim::PrefetcherKind::ideal(),
    ];

    // Cold: every iteration replays both configurations from scratch.
    group.bench_function("cold_run_matched", |b| {
        b.iter(|| {
            let campaign = Campaign::with_threads(cfg.clone(), 1);
            let results = campaign.run_matched(&bench_workload(), &kinds).unwrap();
            black_box(results.len())
        })
    });

    // Warm: a fresh campaign (simulating a new process) on a populated
    // cache directory serves both jobs from the result memo without
    // generating a trace or running the engine.
    let dir = bench_dir("campaign-warm");
    Campaign::with_caches(cfg.clone(), 1, CampaignCaches::in_dir(&dir))
        .unwrap()
        .run_matched(&bench_workload(), &kinds)
        .unwrap();
    group.bench_function("warm_run_matched", |b| {
        b.iter(|| {
            let campaign =
                Campaign::with_caches(cfg.clone(), 1, CampaignCaches::in_dir(&dir)).unwrap();
            let results = campaign.run_matched(&bench_workload(), &kinds).unwrap();
            black_box(results.len())
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick();

    // Partitioning the full `--figures all` grid is pure fingerprint
    // arithmetic; it must stay negligible next to a single replay.
    group.bench_function("partition_full_grid_2_way", |b| {
        b.iter(|| {
            let jobs: Vec<_> = stms_sim::experiments::all_plans(&cfg)
                .iter()
                .flat_map(|plan| plan.jobs().to_vec())
                .collect();
            let distinct = stms_sim::campaign::shard::distinct_jobs(&cfg, &jobs);
            let shard = stms_sim::ShardSpec::new(1, 2).unwrap();
            black_box(distinct.iter().filter(|(fp, _)| shard.owns(*fp)).count())
        })
    });

    // The cost-balanced variant adds a sort and a greedy min-scan on top
    // of the cost predictions; still pure arithmetic, still negligible.
    group.bench_function("cost_partition_full_grid_2_way", |b| {
        b.iter(|| {
            let jobs: Vec<_> = stms_sim::experiments::all_plans(&cfg)
                .iter()
                .flat_map(|plan| plan.jobs().to_vec())
                .collect();
            let distinct = stms_sim::campaign::shard::distinct_jobs(&cfg, &jobs);
            let model = stms_sim::campaign::JobCostModel::analytic();
            let partition = stms_sim::campaign::cost::partition(
                &model,
                &cfg,
                &distinct,
                2,
                stms_types::ShardBalance::Cost,
            );
            black_box(partition.shard_cost_ns.iter().max().copied())
        })
    });

    // Seal + open of a realistic manifest (the merge stage's I/O unit),
    // including the per-job phase-timing section every executed job adds.
    let entries: Vec<_> = (0..128u128)
        .map(|i| (stms_types::Fingerprint::from_raw(i), vec![0u8; 256]))
        .collect();
    let timings: Vec<_> = (0..128u128)
        .map(|i| stms_types::ShardJobTiming {
            fingerprint: stms_types::Fingerprint::from_raw(i),
            queue_ns: 1_000,
            run_ns: 2_000,
        })
        .collect();
    let manifest = stms_types::ShardManifest {
        config: stms_types::Fingerprint::from_raw(7),
        index: 1,
        count: 2,
        balance: stms_types::ShardBalance::Count,
        entries,
        timings,
    };
    group.bench_function("manifest_seal_and_open_128_entries", |b| {
        b.iter(|| {
            let sealed = manifest.seal();
            black_box(
                stms_types::ShardManifest::open(&sealed)
                    .unwrap()
                    .entries
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_job_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_pool");
    group.sample_size(10);

    // Pure scheduling overhead: a batch of trivial jobs per iteration.
    let pool = JobPool::new(2);
    group.bench_function("batch_of_64_trivial_jobs", |b| {
        b.iter(|| {
            let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
            let sum: i64 = pool
                .run_batch(tasks)
                .into_iter()
                .map(|r| r.expect("trivial job"))
                .sum();
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_store,
    bench_disk_tier,
    bench_campaign_cold_vs_warm,
    bench_sharding,
    bench_job_pool
);
criterion_main!(benches);
