//! Benchmarks of the campaign orchestration layer: trace-store hit path vs
//! regeneration, and job-pool scheduling overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stms_bench::bench_workload;
use stms_sim::campaign::{JobPool, TraceStore};
use stms_workloads::generate;

const ACCESSES: usize = 30_000;

fn bench_trace_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store");
    group.sample_size(10);

    // The cost the store removes: regenerating the trace for every figure
    // cell that wants it.
    group.bench_function("cold_generate", |b| {
        b.iter(|| black_box(generate(&bench_workload().with_accesses(ACCESSES)).len()))
    });

    // The cost the store adds: one map lookup and an Arc clone.
    let store = TraceStore::new();
    store.get_or_generate(&bench_workload(), ACCESSES);
    group.bench_function("warm_fetch", |b| {
        b.iter(|| black_box(store.get_or_generate(&bench_workload(), ACCESSES).len()))
    });
    group.finish();
}

fn bench_job_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_pool");
    group.sample_size(10);

    // Pure scheduling overhead: a batch of trivial jobs per iteration.
    let pool = JobPool::new(2);
    group.bench_function("batch_of_64_trivial_jobs", |b| {
        b.iter(|| {
            let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
            let sum: i64 = pool
                .run_batch(tasks)
                .into_iter()
                .map(|r| r.expect("trivial job"))
                .sum();
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_store, bench_job_pool);
criterion_main!(benches);
