//! System model configuration (the paper's Table 1).

use serde::{Deserialize, Serialize};
use stms_types::Cycle;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access (hit) latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of cache lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.associativity
    }
}

/// Main-memory (DRAM channel) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Uncontended access latency in core cycles.
    pub latency_cycles: u64,
    /// Peak transfer bandwidth in bytes per core cycle.
    pub bytes_per_cycle: f64,
    /// Transfer granularity in bytes (one cache line).
    pub transfer_bytes: usize,
}

impl DramConfig {
    /// Cycles the channel is occupied by one transfer of `bytes`.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        ((bytes as f64) / self.bytes_per_cycle).ceil() as u64
    }
}

/// Per-core out-of-order window parameters used by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer size in instructions; off-chip misses more than this
    /// many instructions apart cannot overlap.
    pub rob_size: u64,
    /// Maximum outstanding off-chip misses per core (L1 MSHRs).
    pub mshrs: usize,
    /// Core clock frequency in GHz (used only to convert DRAM nanoseconds).
    pub freq_ghz: f64,
}

/// Stride-prefetcher configuration for the baseline system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideConfig {
    /// Number of concurrently tracked strided streams.
    pub streams: usize,
    /// Prefetch degree: how many lines ahead are fetched once a stride locks.
    pub degree: usize,
    /// Number of identical deltas required before prefetching begins.
    pub confidence: u32,
}

/// Complete system model configuration (Table 1 of the paper).
///
/// # Example
///
/// ```
/// use stms_mem::SystemConfig;
/// let cfg = SystemConfig::hpca09_baseline();
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(cfg.dram.latency_cycles, 180); // 45 ns at 4 GHz
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores on the chip.
    pub cores: usize,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Main memory channel.
    pub dram: DramConfig,
    /// Core window parameters.
    pub core: CoreConfig,
    /// Baseline stride prefetcher.
    pub stride: StrideConfig,
}

// Stable fingerprints so a system model can key on-disk cache entries (the
// campaign result cache memoizes SimResults by, among other things, the full
// SystemConfig). Exhaustive destructuring: adding a field will not compile
// until it is fingerprinted.
impl stms_types::Fingerprintable for SystemConfig {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let SystemConfig {
            cores,
            l1,
            l2,
            dram,
            core,
            stride,
        } = self;
        fp.write_str("SystemConfig/v1");
        fp.write_usize(*cores);
        for cache in [l1, l2] {
            let CacheConfig {
                capacity_bytes,
                associativity,
                line_bytes,
                hit_latency,
            } = cache;
            fp.write_usize(*capacity_bytes);
            fp.write_usize(*associativity);
            fp.write_usize(*line_bytes);
            fp.write_u64(*hit_latency);
        }
        let DramConfig {
            latency_cycles,
            bytes_per_cycle,
            transfer_bytes,
        } = dram;
        fp.write_u64(*latency_cycles);
        fp.write_f64(*bytes_per_cycle);
        fp.write_usize(*transfer_bytes);
        let CoreConfig {
            rob_size,
            mshrs,
            freq_ghz,
        } = core;
        fp.write_u64(*rob_size);
        fp.write_usize(*mshrs);
        fp.write_f64(*freq_ghz);
        let StrideConfig {
            streams,
            degree,
            confidence,
        } = stride;
        fp.write_usize(*streams);
        fp.write_usize(*degree);
        fp.write_u32(*confidence);
    }
}

impl SystemConfig {
    /// The 4-core CMP configuration from Table 1 of the paper: 64 KB 2-way
    /// L1s (2-cycle), 8 MB 16-way shared L2 (20-cycle), 3 GB memory at 45 ns
    /// and 28.4 GB/s, 4 GHz cores with 96-entry ROB and a 32-entry stride
    /// prefetcher.
    pub fn hpca09_baseline() -> Self {
        let freq_ghz = 4.0;
        SystemConfig {
            cores: 4,
            l1: CacheConfig {
                capacity_bytes: 64 * 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 8 * 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
                hit_latency: 20,
            },
            dram: DramConfig {
                latency_cycles: Cycle::from_nanos(45.0, freq_ghz),
                // 28.4 GB/s at 4 GHz = 7.1 bytes per core cycle.
                bytes_per_cycle: 28.4 / freq_ghz,
                transfer_bytes: 64,
            },
            core: CoreConfig {
                rob_size: 96,
                mshrs: 32,
                freq_ghz,
            },
            stride: StrideConfig {
                streams: 32,
                degree: 2,
                confidence: 2,
            },
        }
    }

    /// A scaled-down configuration for fast unit tests: tiny caches so that
    /// short synthetic traces still produce off-chip misses.
    pub fn tiny_for_tests() -> Self {
        let mut cfg = Self::hpca09_baseline();
        cfg.l1.capacity_bytes = 4 * 1024;
        cfg.l2.capacity_bytes = 64 * 1024;
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::hpca09_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = SystemConfig::hpca09_baseline();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.l1.capacity_bytes, 64 * 1024);
        assert_eq!(cfg.l1.associativity, 2);
        assert_eq!(cfg.l1.hit_latency, 2);
        assert_eq!(cfg.l2.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.l2.associativity, 16);
        assert_eq!(cfg.l2.hit_latency, 20);
        assert_eq!(cfg.core.rob_size, 96);
        assert_eq!(cfg.stride.streams, 32);
        assert_eq!(cfg.dram.latency_cycles, 180);
    }

    #[test]
    fn cache_geometry_derivations() {
        let cfg = SystemConfig::hpca09_baseline();
        assert_eq!(cfg.l1.lines(), 1024);
        assert_eq!(cfg.l1.sets(), 512);
        assert_eq!(cfg.l2.lines(), 131072);
        assert_eq!(cfg.l2.sets(), 8192);
    }

    #[test]
    fn dram_transfer_cycles_rounds_up() {
        let cfg = SystemConfig::hpca09_baseline();
        let cycles = cfg.dram.transfer_cycles(64);
        // 64 bytes at 7.1 B/cycle is just over 9 cycles.
        assert_eq!(cycles, 10);
        assert_eq!(cfg.dram.transfer_cycles(0), 0);
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(SystemConfig::default(), SystemConfig::hpca09_baseline());
    }

    #[test]
    fn tiny_config_is_smaller() {
        let tiny = SystemConfig::tiny_for_tests();
        assert!(tiny.l2.capacity_bytes < SystemConfig::hpca09_baseline().l2.capacity_bytes);
    }
}
