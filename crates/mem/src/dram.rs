//! Main-memory channel model: latency, bandwidth occupancy and a two-priority
//! scheduling policy.
//!
//! Demand fetches are high priority; all prefetcher-related traffic (prefetch
//! data, meta-data lookups, updates and history-buffer writes) is low
//! priority, matching the paper's observation (§4.3) that "assigning a low
//! priority to predictor memory traffic is essential to minimize
//! queueing-related stalls". Low-priority transfers never delay demand
//! transfers but do compete with each other, so meta-data traffic bursts make
//! prefetches arrive later (which the coverage accounting observes as
//! partially-covered misses).

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use stms_types::Cycle;

/// Classification of memory traffic, used both for scheduling priority and
/// for the traffic-overhead breakdown of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Demand cache-line fetch triggered by an off-chip miss.
    DemandFill,
    /// Dirty line written back to memory.
    Writeback,
    /// Line fetched by the baseline stride prefetcher (part of the base
    /// system, not counted as temporal-streaming overhead).
    StridePrefetch,
    /// Line fetched by the temporal-streaming prefetcher.
    PrefetchData,
    /// Index-table or history-buffer read performed during a lookup.
    MetaLookup,
    /// Index-table read-modify-write performed during an update.
    MetaUpdate,
    /// History-buffer append (recording the miss sequence).
    MetaRecord,
}

impl TrafficClass {
    /// All traffic classes, in display order.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::DemandFill,
        TrafficClass::Writeback,
        TrafficClass::StridePrefetch,
        TrafficClass::PrefetchData,
        TrafficClass::MetaLookup,
        TrafficClass::MetaUpdate,
        TrafficClass::MetaRecord,
    ];

    /// Whether this class is scheduled at demand (high) priority.
    pub fn is_high_priority(self) -> bool {
        matches!(self, TrafficClass::DemandFill | TrafficClass::Writeback)
    }

    /// Whether this class is part of the temporal-streaming prefetcher's
    /// overhead (as opposed to the base system's own traffic).
    pub fn is_streaming_overhead(self) -> bool {
        matches!(
            self,
            TrafficClass::PrefetchData
                | TrafficClass::MetaLookup
                | TrafficClass::MetaUpdate
                | TrafficClass::MetaRecord
        )
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::DemandFill => "demand",
            TrafficClass::Writeback => "writeback",
            TrafficClass::StridePrefetch => "stride",
            TrafficClass::PrefetchData => "prefetch-data",
            TrafficClass::MetaLookup => "meta-lookup",
            TrafficClass::MetaUpdate => "meta-update",
            TrafficClass::MetaRecord => "meta-record",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Byte counters per traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Bytes transferred for demand fills.
    pub demand_fill: u64,
    /// Bytes transferred for writebacks.
    pub writeback: u64,
    /// Bytes transferred by the stride prefetcher.
    pub stride_prefetch: u64,
    /// Bytes transferred for temporal-streaming prefetch data.
    pub prefetch_data: u64,
    /// Bytes transferred for meta-data lookups.
    pub meta_lookup: u64,
    /// Bytes transferred for meta-data (index) updates.
    pub meta_update: u64,
    /// Bytes transferred for history-buffer recording.
    pub meta_record: u64,
}

impl TrafficStats {
    /// Adds `bytes` to the counter for `class`.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        match class {
            TrafficClass::DemandFill => self.demand_fill += bytes,
            TrafficClass::Writeback => self.writeback += bytes,
            TrafficClass::StridePrefetch => self.stride_prefetch += bytes,
            TrafficClass::PrefetchData => self.prefetch_data += bytes,
            TrafficClass::MetaLookup => self.meta_lookup += bytes,
            TrafficClass::MetaUpdate => self.meta_update += bytes,
            TrafficClass::MetaRecord => self.meta_record += bytes,
        }
    }

    /// Returns the counter for `class`.
    pub fn get(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::DemandFill => self.demand_fill,
            TrafficClass::Writeback => self.writeback,
            TrafficClass::StridePrefetch => self.stride_prefetch,
            TrafficClass::PrefetchData => self.prefetch_data,
            TrafficClass::MetaLookup => self.meta_lookup,
            TrafficClass::MetaUpdate => self.meta_update,
            TrafficClass::MetaRecord => self.meta_record,
        }
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Bytes of base-system traffic (demand fills, writebacks and stride
    /// prefetches): the denominator of the overhead-per-useful-byte metric.
    pub fn base_system(&self) -> u64 {
        self.demand_fill + self.writeback + self.stride_prefetch
    }

    /// Bytes of temporal-streaming meta-data traffic (lookup + update +
    /// record).
    pub fn meta_total(&self) -> u64 {
        self.meta_lookup + self.meta_update + self.meta_record
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for class in TrafficClass::ALL {
            self.add(class, other.get(class));
        }
    }
}

/// The DRAM channel model.
///
/// # Example
///
/// ```
/// use stms_mem::{DramModel, SystemConfig, TrafficClass};
/// use stms_types::Cycle;
///
/// let cfg = SystemConfig::hpca09_baseline();
/// let mut dram = DramModel::new(cfg.dram);
/// let done = dram.access(TrafficClass::DemandFill, 64, Cycle::new(1000));
/// assert_eq!(done.raw(), 1000 + 180);
/// assert_eq!(dram.traffic().demand_fill, 64);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    /// Cycle until which the channel is busy with demand-priority transfers.
    demand_busy_until: Cycle,
    /// Cycle until which the channel is busy counting low-priority transfers
    /// as well (always >= `demand_busy_until`).
    low_busy_until: Cycle,
    traffic: TrafficStats,
    accesses: u64,
}

impl DramModel {
    /// Creates a DRAM channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel {
            cfg,
            demand_busy_until: Cycle::ZERO,
            low_busy_until: Cycle::ZERO,
            traffic: TrafficStats::default(),
            accesses: 0,
        }
    }

    /// Configuration this channel was built with.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Performs an access of `bytes` bytes issued at `now`, returning the
    /// cycle at which the data is available.
    ///
    /// High-priority (demand) accesses queue only behind other high-priority
    /// transfers; low-priority accesses queue behind all traffic.
    pub fn access(&mut self, class: TrafficClass, bytes: u64, now: Cycle) -> Cycle {
        self.traffic.add(class, bytes);
        self.accesses += 1;
        let transfer = self.cfg.transfer_cycles(bytes);
        if class.is_high_priority() {
            let start = now.max(self.demand_busy_until);
            let completion = start + self.cfg.latency_cycles;
            self.demand_busy_until = start + transfer;
            self.low_busy_until = self.low_busy_until.max(self.demand_busy_until);
            completion
        } else {
            let start = now.max(self.low_busy_until);
            let completion = start + self.cfg.latency_cycles;
            self.low_busy_until = start + transfer;
            completion
        }
    }

    /// Records traffic that does not occupy the modelled channel (used for
    /// purely analytic accounting such as published-results reconstruction).
    pub fn account_only(&mut self, class: TrafficClass, bytes: u64) {
        self.traffic.add(class, bytes);
    }

    /// Per-class byte counters accumulated so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Number of channel accesses performed.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Fraction of cycles the channel was busy up to `now` (0.0 – 1.0+).
    pub fn utilization(&self, now: Cycle) -> f64 {
        if now == Cycle::ZERO {
            return 0.0;
        }
        let busy = self.cfg.transfer_cycles(self.traffic.total());
        busy as f64 / now.raw() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    #[test]
    fn uncontended_demand_access_takes_latency() {
        let mut d = dram();
        let done = d.access(TrafficClass::DemandFill, 64, Cycle::new(100));
        assert_eq!(done, Cycle::new(280));
    }

    #[test]
    fn back_to_back_demand_accesses_queue_on_bandwidth() {
        let mut d = dram();
        let first = d.access(TrafficClass::DemandFill, 64, Cycle::new(0));
        let second = d.access(TrafficClass::DemandFill, 64, Cycle::new(0));
        // The second transfer starts only after the first occupies the channel.
        assert_eq!(first, Cycle::new(180));
        assert!(second > first);
        assert_eq!(second, Cycle::new(10 + 180));
    }

    #[test]
    fn low_priority_never_delays_demand() {
        let mut d = dram();
        // Saturate the channel with low-priority traffic.
        for _ in 0..100 {
            d.access(TrafficClass::MetaUpdate, 128, Cycle::new(0));
        }
        let demand = d.access(TrafficClass::DemandFill, 64, Cycle::new(0));
        assert_eq!(
            demand,
            Cycle::new(180),
            "demand must not queue behind meta-data"
        );
    }

    #[test]
    fn demand_delays_low_priority() {
        let mut d = dram();
        for _ in 0..10 {
            d.access(TrafficClass::DemandFill, 64, Cycle::new(0));
        }
        let meta = d.access(TrafficClass::MetaLookup, 64, Cycle::new(0));
        assert!(meta > Cycle::new(180), "meta-data queues behind demand");
    }

    #[test]
    fn traffic_accounting_by_class() {
        let mut d = dram();
        d.access(TrafficClass::DemandFill, 64, Cycle::ZERO);
        d.access(TrafficClass::MetaUpdate, 128, Cycle::ZERO);
        d.access(TrafficClass::MetaLookup, 64, Cycle::ZERO);
        d.access(TrafficClass::PrefetchData, 64, Cycle::ZERO);
        d.account_only(TrafficClass::MetaRecord, 64);
        let t = d.traffic();
        assert_eq!(t.demand_fill, 64);
        assert_eq!(t.meta_update, 128);
        assert_eq!(t.meta_lookup, 64);
        assert_eq!(t.prefetch_data, 64);
        assert_eq!(t.meta_record, 64);
        assert_eq!(t.total(), 64 + 128 + 64 + 64 + 64);
        assert_eq!(t.base_system(), 64);
        assert_eq!(t.meta_total(), 128 + 64 + 64);
        assert_eq!(d.access_count(), 4);
    }

    #[test]
    fn traffic_merge_adds_counters() {
        let mut a = TrafficStats::default();
        a.add(TrafficClass::DemandFill, 10);
        let mut b = TrafficStats::default();
        b.add(TrafficClass::DemandFill, 5);
        b.add(TrafficClass::Writeback, 7);
        a.merge(&b);
        assert_eq!(a.demand_fill, 15);
        assert_eq!(a.writeback, 7);
    }

    #[test]
    fn class_predicates() {
        assert!(TrafficClass::DemandFill.is_high_priority());
        assert!(TrafficClass::Writeback.is_high_priority());
        assert!(!TrafficClass::MetaLookup.is_high_priority());
        assert!(TrafficClass::MetaUpdate.is_streaming_overhead());
        assert!(!TrafficClass::StridePrefetch.is_streaming_overhead());
        for c in TrafficClass::ALL {
            assert!(!c.label().is_empty());
            assert_eq!(c.to_string(), c.label());
        }
    }

    #[test]
    fn utilization_grows_with_traffic() {
        let mut d = dram();
        assert_eq!(d.utilization(Cycle::ZERO), 0.0);
        d.access(TrafficClass::DemandFill, 64, Cycle::ZERO);
        assert!(d.utilization(Cycle::new(100)) > 0.0);
    }
}
