//! Set-associative cache model with LRU replacement.
//!
//! Used for both the per-core L1 data caches and the shared L2 of the
//! simulated CMP. The model is functional (tag-only): it tracks presence and
//! dirtiness of lines, not their contents.

use crate::config::CacheConfig;
use stms_types::LineAddr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss,
}

impl CacheOutcome {
    /// Whether the access hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Whether the evicted line was dirty (requires a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        valid: false,
        dirty: false,
        lru: 0,
    };
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of lines filled.
    pub fills: u64,
    /// Number of dirty evictions.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero if no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative, write-back, LRU cache.
///
/// # Example
///
/// ```
/// use stms_mem::{CacheConfig, SetAssocCache};
/// use stms_types::LineAddr;
///
/// let mut cache = SetAssocCache::new(CacheConfig {
///     capacity_bytes: 4096,
///     associativity: 2,
///     line_bytes: 64,
///     hit_latency: 2,
/// });
/// let line = LineAddr::new(7);
/// assert!(!cache.access(line, false).is_hit());
/// cache.fill(line, false);
/// assert!(cache.access(line, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    lru_clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the number of sets is not a power of two or associativity is
    /// zero.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(cfg.associativity > 0, "associativity must be non-zero");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        SetAssocCache {
            cfg,
            sets: vec![vec![Way::EMPTY; cfg.associativity]; sets],
            set_mask: (sets - 1) as u64,
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.set_mask.count_ones()
    }

    /// Performs a lookup; on a hit the line's recency is updated and, for
    /// writes, the line is marked dirty. Misses do **not** allocate — call
    /// [`SetAssocCache::fill`] once the miss is serviced.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> CacheOutcome {
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.lru = clock;
                way.dirty |= is_write;
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.stats.misses += 1;
        CacheOutcome::Miss
    }

    /// Checks presence without updating recency or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Inserts a line, evicting the LRU way of its set if needed. Returns the
    /// eviction, if any. If the line is already present the call only updates
    /// its dirty bit and recency.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        let set_idx = self.set_index(line);
        let tag = self.tag(line);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set_bits = self.set_mask.count_ones();
        self.stats.fills += 1;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.dirty |= dirty;
            way.lru = clock;
            return None;
        }
        // Prefer an invalid way.
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag,
                valid: true,
                dirty,
                lru: clock,
            };
            return None;
        }
        // Evict the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("associativity is non-zero");
        let evicted_line = LineAddr::new((victim.tag << set_bits) | set_idx as u64);
        let eviction = Eviction {
            line: evicted_line,
            dirty: victim.dirty,
        };
        if eviction.dirty {
            self.stats.dirty_evictions += 1;
        }
        *victim = Way {
            tag,
            valid: true,
            dirty,
            lru: clock,
        };
        Some(eviction)
    }

    /// Removes a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_index(line);
        let tag = self.tag(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the hit/miss counters (contents are preserved), used after
    /// cache warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(assoc: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 64 * 8 * assoc, // 8 sets
            associativity: assoc,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2);
        let l = LineAddr::new(3);
        assert_eq!(c.access(l, false), CacheOutcome::Miss);
        assert!(c.fill(l, false).is_none());
        assert_eq!(c.access(l, false), CacheOutcome::Hit);
        assert!(c.probe(l));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2);
        // Three lines mapping to the same set (8 sets => stride of 8 lines).
        let a = LineAddr::new(0);
        let b = LineAddr::new(8);
        let d = LineAddr::new(16);
        c.fill(a, false);
        c.fill(b, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.access(a, false).is_hit());
        let evicted = c.fill(d, false).expect("set is full");
        assert_eq!(evicted.line, b);
        assert!(c.probe(a));
        assert!(c.probe(d));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small_cache(1);
        let a = LineAddr::new(0);
        let b = LineAddr::new(8);
        c.fill(a, false);
        assert!(c.access(a, true).is_hit()); // make dirty via a write hit
        let ev = c.fill(b, false).expect("direct-mapped conflict");
        assert!(ev.dirty);
        assert_eq!(ev.line, a);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn fill_existing_line_does_not_evict() {
        let mut c = small_cache(2);
        let a = LineAddr::new(5);
        c.fill(a, false);
        assert!(c.fill(a, true).is_none());
        // The line is now dirty: evicting it reports dirty.
        let conflicting = LineAddr::new(5 + 8);
        c.fill(conflicting, false);
        let ev = c.fill(LineAddr::new(5 + 16), false).expect("evicts LRU");
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(2);
        let a = LineAddr::new(9);
        c.fill(a, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert!(!c.probe(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = small_cache(2);
        assert_eq!(c.occupancy(), 0);
        for i in 0..5 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 5);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = small_cache(2);
        let a = LineAddr::new(1);
        c.fill(a, false);
        c.access(a, false);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.probe(a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = SetAssocCache::new(CacheConfig {
            capacity_bytes: 64 * 3,
            associativity: 1,
            line_bytes: 64,
            hit_latency: 1,
        });
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = small_cache(1);
        let victim = LineAddr::new(0x1234 * 8 + 3);
        c.fill(victim, false);
        let ev = c.fill(LineAddr::new(0x9999 * 8 + 3), false).unwrap();
        assert_eq!(ev.line, victim);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache(1);
        for i in 0..8 {
            c.fill(LineAddr::new(i), false);
        }
        for i in 0..8 {
            assert!(
                c.probe(LineAddr::new(i)),
                "line {i} should still be resident"
            );
        }
    }
}
