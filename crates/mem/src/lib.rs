//! Cycle-approximate chip-multiprocessor memory-hierarchy simulator used as
//! the substrate of the STMS reproduction.
//!
//! The paper evaluates STMS with FLEXUS full-system simulation of a 4-core
//! CMP (Table 1). This crate provides the equivalent substrate for
//! trace-driven experiments:
//!
//! * [`SetAssocCache`] — per-core L1s and the shared L2;
//! * [`DramModel`] — a main-memory channel with latency, bandwidth occupancy
//!   and a two-priority scheduler (demand vs. prefetcher meta-data traffic);
//! * [`StridePrefetcher`] — the base system's stride prefetcher;
//! * [`MshrFile`], [`PrefetchBuffer`], [`StreamState`] — the on-chip
//!   structures of Figure 2;
//! * [`Prefetcher`] — the interface implemented by every temporal-streaming
//!   prefetcher in this workspace (idealized TMS, STMS, and the prior-work
//!   baselines);
//! * [`CmpSimulator`] — the trace replay engine with an epoch-based
//!   memory-level-parallelism timing model;
//! * [`SimResult`] — coverage, traffic and timing metrics of one run.
//!
//! # Example
//!
//! ```
//! use stms_mem::{CmpSimulator, NullPrefetcher, SimOptions, SystemConfig};
//! use stms_types::{CoreId, LineAddr, MemAccess, Trace, TraceMeta};
//!
//! // A tiny pointer-chasing trace on one core.
//! let mut trace = Trace::new(TraceMeta { workload: "example".into(), cores: 1, ..Default::default() });
//! for i in 0..1000u64 {
//!     trace.push(MemAccess::read(CoreId::new(0), LineAddr::new((i * 97) % 4096)).with_gap(3));
//! }
//!
//! let cfg = SystemConfig::hpca09_baseline();
//! let result = CmpSimulator::new(&cfg, SimOptions::default())
//!     .run(&trace, &mut NullPrefetcher::new());
//! println!("IPC without temporal streaming: {:.3}", result.ipc());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod mshr;
pub mod prefetcher;
pub mod result;
pub mod stream;
pub mod stride;

pub use cache::{CacheOutcome, CacheStats, Eviction, SetAssocCache};
pub use config::{CacheConfig, CoreConfig, DramConfig, StrideConfig, SystemConfig};
pub use dram::{DramModel, TrafficClass, TrafficStats};
pub use engine::{CmpSimulator, InvalidSimOptions, SimOptions};
pub use mshr::{MshrEntry, MshrFile};
pub use prefetcher::{NullPrefetcher, Prefetcher, StreamChunk};
pub use result::{DecodeResultError, OverheadBreakdown, SimResult, SIM_RESULT_CODEC_VERSION};
pub use stream::{PrefetchBuffer, PrefetchedBlock, StreamState};
pub use stride::{StridePrefetcher, StrideStats};
