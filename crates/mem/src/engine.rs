//! The trace-driven, cycle-approximate CMP simulation engine.
//!
//! The engine replays a [`Trace`] through per-core L1 caches, a shared L2,
//! the baseline stride prefetcher and the DRAM channel, while driving a
//! temporal-streaming [`Prefetcher`] through its trigger/record hooks and
//! managing the on-chip stream machinery (address queues and prefetch
//! buffers).
//!
//! # Timing model
//!
//! Timing is approximated with an *epoch* model of memory-level parallelism
//! (in the spirit of Chou et al. \[7\] as used by the paper): off-chip demand
//! read misses that are (a) independent (not flagged as pointer-dependent on
//! the previous miss), (b) within one reorder-buffer window of the epoch's
//! first miss and (c) within the per-core MSHR limit, overlap with the
//! epoch's first miss and add no further stall. Dependent misses, or misses
//! beyond the window, start a new epoch and stall the core for a full memory
//! round trip. L2 hits charge their hit latency when dependent and a small
//! pipelined cost otherwise. Write misses are treated as non-blocking (they
//! consume bandwidth but add no stall). Covered misses (prefetch-buffer hits)
//! charge either the L2 hit latency (fully covered) or the remaining fetch
//! time (partially covered).
//!
//! The workload's MLP (Table 2) is an emergent property of the trace's
//! dependence flags and compute gaps under this model, and is reported in the
//! [`SimResult`].

use crate::cache::SetAssocCache;
use crate::config::SystemConfig;
use crate::dram::{DramModel, TrafficClass, TrafficStats};
use crate::mshr::MshrFile;
use crate::prefetcher::Prefetcher;
use crate::result::SimResult;
use crate::stream::{PrefetchBuffer, StreamState};
use crate::stride::StridePrefetcher;
use serde::{Deserialize, Serialize};
use std::fmt;
use stms_types::stream::{TraceSource, TraceStreamError, DEFAULT_CHUNK_LEN};
use stms_types::{AccessKind, Cycle, LineAddr, MemAccess, Trace};

/// Tunables of the simulation engine that are not part of the system model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Capacity of each core's prefetch buffer in lines (2 KB = 32 lines).
    pub prefetch_buffer_lines: usize,
    /// Maximum prefetched-but-unused blocks the engine keeps in flight per
    /// core (stream lookahead / prefetch depth of the stream engine).
    pub stream_lookahead: usize,
    /// When the address queue holds fewer than this many entries the engine
    /// asks the prefetcher for the next chunk.
    pub refill_threshold: usize,
    /// Fraction of the trace used to warm caches and predictor meta-data
    /// before statistics are collected.
    pub warmup_fraction: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            prefetch_buffer_lines: 32,
            stream_lookahead: 12,
            refill_threshold: 8,
            warmup_fraction: 0.2,
        }
    }
}

// Stable fingerprint so engine options can key on-disk memoized results.
impl stms_types::Fingerprintable for SimOptions {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let SimOptions {
            prefetch_buffer_lines,
            stream_lookahead,
            refill_threshold,
            warmup_fraction,
        } = self;
        fp.write_str("SimOptions/v1");
        fp.write_usize(*prefetch_buffer_lines);
        fp.write_usize(*stream_lookahead);
        fp.write_usize(*refill_threshold);
        fp.write_f64(*warmup_fraction);
    }
}

/// Error describing why a [`SimOptions`] value is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSimOptions(String);

impl fmt::Display for InvalidSimOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulation options: {}", self.0)
    }
}

impl std::error::Error for InvalidSimOptions {}

impl SimOptions {
    /// Fallible builder: these options with the given warm-up fraction,
    /// validated. This is the construction path for values coming from
    /// untrusted sources — the `stms-experiments` CLI routes `--warmup`
    /// through it before any simulation starts.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSimOptions`] under the same conditions as
    /// [`SimOptions::validate`].
    pub fn try_with_warmup(self, warmup_fraction: f64) -> Result<Self, InvalidSimOptions> {
        let opts = SimOptions {
            warmup_fraction,
            ..self
        };
        opts.validate()?;
        Ok(opts)
    }

    /// Checks that every option is in its meaningful range.
    ///
    /// The engine itself assumes these invariants: a zero-capacity prefetch
    /// buffer silently drops every prefetched line, a zero refill threshold
    /// never asks the prefetcher for addresses, and a warm-up fraction at or
    /// above `1.0` leaves no measured region (division by zero in the final
    /// metrics).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSimOptions`] naming the first offending field.
    pub fn validate(&self) -> Result<(), InvalidSimOptions> {
        if !self.warmup_fraction.is_finite() || !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(InvalidSimOptions(format!(
                "warmup_fraction must be in [0, 1), got {}",
                self.warmup_fraction
            )));
        }
        if self.prefetch_buffer_lines == 0 {
            return Err(InvalidSimOptions(
                "prefetch_buffer_lines must be non-zero (a zero-capacity buffer drops every \
                 prefetch)"
                    .into(),
            ));
        }
        if self.refill_threshold == 0 {
            return Err(InvalidSimOptions(
                "refill_threshold must be non-zero (the engine would never request addresses)"
                    .into(),
            ));
        }
        if self.stream_lookahead == 0 {
            return Err(InvalidSimOptions(
                "stream_lookahead must be non-zero (no prefetch could ever be in flight)".into(),
            ));
        }
        Ok(())
    }
}

/// Per-core dynamic state.
#[derive(Debug)]
struct CoreState {
    clock: Cycle,
    instructions: u64,
    /// Clock and instruction count at the end of warm-up (subtracted from
    /// the final figures).
    warmup_clock: Cycle,
    warmup_instructions: u64,
    epoch_open: bool,
    epoch_instr: u64,
    epoch_misses: u64,
    mshrs: MshrFile,
    stream: StreamState,
    pfb: PrefetchBuffer,
    /// Prefetches issued for the currently-followed stream that have not yet
    /// been consumed by a demand access (bounds the stream lookahead).
    inflight_prefetches: usize,
    /// Demand hits observed on the currently-followed stream; used to ramp
    /// the lookahead so that mispredicted streams waste few prefetches.
    stream_hits: u64,
}

impl CoreState {
    fn new(cfg: &SystemConfig, opts: &SimOptions) -> Self {
        CoreState {
            clock: Cycle::ZERO,
            instructions: 0,
            warmup_clock: Cycle::ZERO,
            warmup_instructions: 0,
            epoch_open: false,
            epoch_instr: 0,
            epoch_misses: 0,
            mshrs: MshrFile::new(cfg.core.mshrs),
            stream: StreamState::new(),
            pfb: PrefetchBuffer::new(opts.prefetch_buffer_lines),
            inflight_prefetches: 0,
            stream_hits: 0,
        }
    }
}

/// The simulation engine. Create one per run with [`CmpSimulator::new`] and
/// call [`CmpSimulator::run`].
///
/// # Example
///
/// ```
/// use stms_mem::{CmpSimulator, NullPrefetcher, SimOptions, SystemConfig};
/// use stms_types::{CoreId, LineAddr, MemAccess, Trace, TraceMeta};
///
/// let mut trace = Trace::new(TraceMeta { workload: "demo".into(), cores: 1, ..Default::default() });
/// for i in 0..100u64 {
///     trace.push(MemAccess::read(CoreId::new(0), LineAddr::new(i * 1000)).with_gap(4));
/// }
/// let cfg = SystemConfig::tiny_for_tests();
/// let result = CmpSimulator::new(&cfg, SimOptions { warmup_fraction: 0.0, ..Default::default() })
///     .run(&trace, &mut NullPrefetcher::new());
/// assert!(result.uncovered_misses > 0);
/// ```
#[derive(Debug)]
pub struct CmpSimulator<'a> {
    cfg: &'a SystemConfig,
    opts: SimOptions,
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    stride: StridePrefetcher,
    dram: DramModel,
    cores: Vec<CoreState>,
    res: SimResult,
    warmup_traffic: TrafficStats,
}

impl<'a> CmpSimulator<'a> {
    /// Creates an engine for the given system model.
    pub fn new(cfg: &'a SystemConfig, opts: SimOptions) -> Self {
        let cores = (0..cfg.cores).map(|_| CoreState::new(cfg, &opts)).collect();
        CmpSimulator {
            cfg,
            opts,
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: SetAssocCache::new(cfg.l2),
            stride: StridePrefetcher::new(cfg.stride),
            dram: DramModel::new(cfg.dram),
            cores,
            res: SimResult::default(),
            warmup_traffic: TrafficStats::default(),
        }
    }

    /// Replays `trace` with `prefetcher`, returning the collected metrics.
    ///
    /// The first `warmup_fraction` of the trace trains caches and predictor
    /// meta-data but is excluded from all reported counters.
    ///
    /// This is the materialized special case of [`CmpSimulator::run_stream`]
    /// (an in-memory trace source cannot fail), and produces bit-identical
    /// results to streaming the same access sequence.
    pub fn run<P: Prefetcher + ?Sized>(self, trace: &Trace, prefetcher: &mut P) -> SimResult {
        let mut source = trace.chunks(DEFAULT_CHUNK_LEN);
        self.run_stream(&mut source, prefetcher)
            .expect("in-memory trace sources cannot fail")
    }

    /// Replays any [`TraceSource`] with `prefetcher`, chunk by chunk.
    ///
    /// The engine's resident state is independent of trace length: it holds
    /// one chunk at a time, so a trace far larger than memory (a disk-backed
    /// [`stms_types::stream::TraceReader`], or a generator streaming on the
    /// fly) replays in bounded space. Source dispatch happens once per
    /// chunk; the per-access hot path is unchanged from [`CmpSimulator::run`],
    /// and the metrics are bit-identical for the same access sequence —
    /// including when the source is the consumer end of a staged
    /// [`stms_types::ChunkPipeline`], whatever its depth, decode-worker
    /// count, chunking, or warm-up boundary alignment (the pipeline
    /// preserves chunk order and boundaries exactly).
    ///
    /// The warm-up boundary is computed from
    /// [`TraceSource::total_accesses`], which every source knows up front.
    ///
    /// # Errors
    ///
    /// Propagates the source's first [`TraceStreamError`] (a corrupt or
    /// truncated disk stream). The partially-run simulation is discarded —
    /// callers fall back to regenerating the trace.
    pub fn run_stream<P, S>(
        mut self,
        source: &mut S,
        prefetcher: &mut P,
    ) -> Result<SimResult, TraceStreamError>
    where
        P: Prefetcher + ?Sized,
        S: TraceSource + ?Sized,
    {
        self.res.prefetcher = prefetcher.name().to_string();
        self.res.workload = source.meta().workload.clone();
        let total = source.total_accesses() as usize;
        let warmup_end = ((total as f64) * self.opts.warmup_fraction.clamp(0.0, 0.95)) as usize;

        let mut idx = 0usize;
        while let Some(chunk) = source.next_chunk()? {
            debug_assert_eq!(chunk.first_index as usize, idx, "chunks arrive in order");
            for access in chunk.accesses {
                if idx == warmup_end {
                    self.end_warmup();
                }
                self.step(*access, prefetcher, idx >= warmup_end);
                idx += 1;
            }
        }
        Ok(self.finish(idx, prefetcher, warmup_end))
    }

    /// Marks the end of the warm-up period: statistics collected so far are
    /// discarded.
    fn end_warmup(&mut self) {
        let traffic_snapshot = *self.dram.traffic();
        self.warmup_traffic = traffic_snapshot;
        for core in &mut self.cores {
            core.warmup_clock = core.clock;
            core.warmup_instructions = core.instructions;
        }
        let prefetcher = std::mem::take(&mut self.res.prefetcher);
        let workload = std::mem::take(&mut self.res.workload);
        self.res = SimResult {
            prefetcher,
            workload,
            ..SimResult::default()
        };
    }

    fn step<P: Prefetcher + ?Sized>(&mut self, a: MemAccess, prefetcher: &mut P, measure: bool) {
        let core_idx = a.core.index();
        assert!(
            core_idx < self.cores.len(),
            "trace references core {core_idx} beyond configured {}",
            self.cores.len()
        );

        // Advance the core clock over the compute gap (one instruction per cycle).
        {
            let st = &mut self.cores[core_idx];
            st.clock += a.compute_gap as u64;
            st.instructions += a.compute_gap as u64 + 1;
            st.epoch_instr += a.compute_gap as u64 + 1;
            let now = st.clock;
            st.mshrs.retire_completed(now);
        }
        if measure {
            self.res.accesses += 1;
        }
        let is_write = a.kind == AccessKind::Write;

        // L1 lookup.
        if self.l1[core_idx].access(a.line, is_write).is_hit() {
            if measure {
                self.res.l1_hits += 1;
            }
            // L1 hits are pipelined; no stall charged.
            return;
        }

        // The baseline stride prefetcher observes every L1 miss; its fills go
        // straight into the shared L2.
        {
            let now = self.cores[core_idx].clock;
            for predicted in self.stride.train(a.core, a.line) {
                if !self.l2.probe(predicted) {
                    self.dram.access(
                        TrafficClass::StridePrefetch,
                        self.cfg.l2.line_bytes as u64,
                        now,
                    );
                    self.l2_fill(predicted, false);
                }
            }
        }

        // Prefetch buffer lookup (reads only; stores retire via the store buffer).
        if !is_write {
            let taken = self.cores[core_idx].pfb.take(a.line);
            if let Some(block) = taken {
                let st = &mut self.cores[core_idx];
                st.inflight_prefetches = st.inflight_prefetches.saturating_sub(1);
                st.stream_hits += 1;
                let fully_covered = block.available_at <= st.clock;
                if fully_covered {
                    // A fully-covered miss behaves like an L2 hit.
                    st.clock += if a.dependent {
                        self.cfg.l2.hit_latency
                    } else {
                        self.cfg.l2.hit_latency / 4
                    };
                } else {
                    // Partially covered: the demand request arrives while the
                    // prefetch is still in flight. The core waits for the
                    // earlier of (a) the low-priority prefetch completing and
                    // (b) a freshly-issued demand fetch (the request is
                    // escalated / merged at demand priority), so a late
                    // prefetch can never be slower than an ordinary miss.
                    // Like ordinary misses, independent waits within one ROB
                    // window overlap with the epoch leader instead of
                    // serializing.
                    let remaining = block.available_at - st.clock;
                    let demand_equivalent = self.cfg.l2.hit_latency + self.cfg.dram.latency_cycles;
                    let wait = remaining.min(demand_equivalent);
                    let joins_epoch = st.epoch_open
                        && !a.dependent
                        && st.epoch_instr < self.cfg.core.rob_size
                        && !st.mshrs.is_full();
                    if !joins_epoch {
                        st.clock += wait;
                        st.epoch_open = true;
                        st.epoch_instr = 0;
                        st.epoch_misses = 0;
                    }
                }
                if measure {
                    if fully_covered {
                        self.res.covered_full += 1;
                    } else {
                        self.res.covered_partial += 1;
                    }
                    self.res.prefetches_used += 1;
                }
                // Install the used block on chip.
                self.fill_on_chip(core_idx, a.line, false);
                let now = self.cores[core_idx].clock;
                prefetcher.record(a.core, a.line, true, now, &mut self.dram);
                self.pump_stream(core_idx, a.core, prefetcher);
                return;
            }
        }

        // L2 lookup.
        if self.l2.access(a.line, false).is_hit() {
            let st = &mut self.cores[core_idx];
            // Dependent loads expose the full L2 latency; independent ones are
            // largely hidden by out-of-order execution.
            st.clock += if a.dependent {
                self.cfg.l2.hit_latency
            } else {
                self.cfg.l2.hit_latency / 4
            };
            if measure {
                self.res.l2_hits += 1;
            }
            self.l1_fill(core_idx, a.line, is_write);
            return;
        }

        // ---- Off-chip miss. ----
        let now = self.cores[core_idx].clock;

        if is_write {
            // Non-blocking store miss: fetch the line (read-for-ownership) but
            // charge no stall.
            if measure {
                self.res.write_misses += 1;
            }
            self.dram
                .access(TrafficClass::DemandFill, self.cfg.l2.line_bytes as u64, now);
            self.fill_on_chip(core_idx, a.line, true);
            return;
        }

        // Demand read miss.
        let in_stream =
            self.cores[core_idx].stream.is_active() && self.cores[core_idx].stream.contains(a.line);

        if measure {
            self.res.uncovered_misses += 1;
            if in_stream {
                self.res.stream_lost_misses += 1;
            }
        }

        // Timing: epoch model of overlapping off-chip misses.
        self.account_read_miss_timing(core_idx, &a, measure);

        // Possibly trigger a new stream, then record the miss in predictor
        // meta-data. The lookup must happen before the record so that it
        // finds the *previous* occurrence of the miss address rather than the
        // entry being written for the current miss.
        let now = self.cores[core_idx].clock;
        if in_stream {
            // The stream fell behind the demand point (lookup latency or
            // limited lookahead): skip past this address but keep streaming.
            self.cores[core_idx].stream.drop_through(a.line);
        } else {
            // A genuinely new stream trigger: abandon the old stream. Blocks
            // already prefetched for it stay in the prefetch buffer until
            // they age out (and count as erroneous if never used).
            self.cores[core_idx].stream.squash();
            self.cores[core_idx].inflight_prefetches = 0;
            self.cores[core_idx].stream_hits = 0;
            if let Some(chunk) = prefetcher.on_trigger(a.core, a.line, now, &mut self.dram) {
                let st = &mut self.cores[core_idx];
                st.stream.start(chunk.addresses, chunk.ready_at);
            }
        }
        prefetcher.record(a.core, a.line, false, now, &mut self.dram);
        self.fill_on_chip(core_idx, a.line, false);
        self.pump_stream(core_idx, a.core, prefetcher);
    }

    /// Applies the epoch timing model to an uncovered demand read miss.
    fn account_read_miss_timing(&mut self, core_idx: usize, a: &MemAccess, measure: bool) {
        let issue_at = self.cores[core_idx].clock + self.cfg.l2.hit_latency;
        let completion = self.dram.access(
            TrafficClass::DemandFill,
            self.cfg.l2.line_bytes as u64,
            issue_at,
        );
        let st = &mut self.cores[core_idx];
        let joins_epoch = st.epoch_open
            && !a.dependent
            && st.epoch_instr < self.cfg.core.rob_size
            && !st.mshrs.is_full();
        st.mshrs.allocate(a.line, completion);
        if joins_epoch {
            st.epoch_misses += 1;
        } else {
            // Close the previous epoch (epochs opened by partially-covered
            // prefetch waits contain no demand misses and are not counted in
            // the MLP statistics).
            if st.epoch_open && st.epoch_misses > 0 && measure {
                self.res.miss_epochs += 1;
                self.res.epoch_misses += st.epoch_misses;
            }
            // The core stalls for the full round trip of the epoch leader.
            st.clock = completion;
            st.epoch_open = true;
            st.epoch_instr = 0;
            st.epoch_misses = 1;
        }
    }

    /// Issues prefetches for the core's active stream, keeping up to
    /// `stream_lookahead` unconsumed prefetched blocks in flight.
    fn pump_stream<P: Prefetcher + ?Sized>(
        &mut self,
        core_idx: usize,
        core: stms_types::CoreId,
        prefetcher: &mut P,
    ) {
        loop {
            let st = &mut self.cores[core_idx];
            if !st.stream.is_active() {
                return;
            }
            // Confidence-ramped lookahead: a freshly-triggered stream runs
            // only a few blocks ahead; each confirmed hit widens the
            // window up to the configured maximum, so mispredicted streams
            // waste little bandwidth while accurate ones reach full depth.
            let effective_lookahead =
                (4 + 2 * st.stream_hits as usize).min(self.opts.stream_lookahead);
            if st.inflight_prefetches >= effective_lookahead {
                return;
            }
            if st.stream.queued() < self.opts.refill_threshold && !st.stream.is_exhausted() {
                let now = st.clock;
                let chunk = prefetcher.next_chunk(core, now, &mut self.dram);
                let ready = chunk.ready_at;
                self.cores[core_idx].stream.extend(chunk.addresses, ready);
            }
            let st = &mut self.cores[core_idx];
            let Some(line) = st.stream.pop() else {
                if st.stream.is_exhausted() {
                    st.stream.squash();
                }
                return;
            };
            // Skip lines that are already on chip or already prefetched.
            if self.l1[core_idx].probe(line)
                || self.l2.probe(line)
                || self.cores[core_idx].pfb.contains(line)
            {
                continue;
            }
            let st = &mut self.cores[core_idx];
            let issue_at = st.clock.max(st.stream.ready_at());
            let completion = self.dram.access(
                TrafficClass::PrefetchData,
                self.cfg.l2.line_bytes as u64,
                issue_at,
            );
            self.res.prefetches_issued += 1;
            self.cores[core_idx].inflight_prefetches += 1;
            if let Some(evicted) = self.cores[core_idx].pfb.insert(line, completion) {
                self.res.prefetches_unused += 1;
                prefetcher.on_unused(core, evicted.line);
            }
        }
    }

    fn l1_fill(&mut self, core_idx: usize, line: LineAddr, dirty: bool) {
        if let Some(evicted) = self.l1[core_idx].fill(line, dirty) {
            if evicted.dirty {
                // Dirty L1 victim is absorbed by the (inclusive) L2.
                self.l2.fill(evicted.line, true);
            }
        }
    }

    fn l2_fill(&mut self, line: LineAddr, dirty: bool) {
        if let Some(evicted) = self.l2.fill(line, dirty) {
            if evicted.dirty {
                let now = self.max_clock();
                self.dram
                    .access(TrafficClass::Writeback, self.cfg.l2.line_bytes as u64, now);
            }
        }
    }

    fn fill_on_chip(&mut self, core_idx: usize, line: LineAddr, dirty: bool) {
        self.l2_fill(line, false);
        self.l1_fill(core_idx, line, dirty);
    }

    fn max_clock(&self) -> Cycle {
        self.cores
            .iter()
            .map(|c| c.clock)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    fn finish<P: Prefetcher + ?Sized>(
        mut self,
        replayed: usize,
        prefetcher: &mut P,
        warmup_end: usize,
    ) -> SimResult {
        // If the trace was so short that warm-up never ended, end it now so
        // counters are at least well-defined.
        if warmup_end >= replayed && replayed > 0 {
            self.end_warmup();
        }
        let now = self.max_clock();
        prefetcher.finish(now, &mut self.dram);

        // Close open epochs.
        for st in &mut self.cores {
            if st.epoch_open && st.epoch_misses > 0 {
                self.res.miss_epochs += 1;
                self.res.epoch_misses += st.epoch_misses;
            }
            st.epoch_open = false;
        }
        // Remaining never-used prefetched blocks are erroneous.
        for st in &mut self.cores {
            let unused = st.pfb.drain().len() as u64;
            self.res.prefetches_unused += unused;
        }

        self.res.instructions = self
            .cores
            .iter()
            .map(|c| c.instructions - c.warmup_instructions)
            .sum();
        self.res.cycles = self
            .cores
            .iter()
            .map(|c| c.clock.saturating_since(c.warmup_clock))
            .max()
            .unwrap_or(0);

        // Traffic accumulated after warm-up only.
        let total = *self.dram.traffic();
        let mut measured = TrafficStats::default();
        for class in TrafficClass::ALL {
            measured.add(
                class,
                total
                    .get(class)
                    .saturating_sub(self.warmup_traffic.get(class)),
            );
        }
        self.res.traffic = measured;
        self.res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::{NullPrefetcher, StreamChunk};
    use stms_types::{CoreId, TraceMeta};

    fn trace_of(lines: &[u64], core: u16) -> Trace {
        let mut t = Trace::new(TraceMeta {
            workload: "t".into(),
            cores: 4,
            ..Default::default()
        });
        for &l in lines {
            t.push(MemAccess::read(CoreId::new(core), LineAddr::new(l)).with_gap(2));
        }
        t
    }

    fn opts_no_warmup() -> SimOptions {
        SimOptions {
            warmup_fraction: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn sim_options_validation_rejects_out_of_range_fields() {
        assert!(SimOptions::default().validate().is_ok());
        assert!(SimOptions::default().try_with_warmup(0.0).is_ok());
        let kept = SimOptions {
            stream_lookahead: 7,
            ..Default::default()
        }
        .try_with_warmup(0.999)
        .expect("valid warm-up");
        assert_eq!(kept.stream_lookahead, 7, "other fields pass through");
        assert_eq!(kept.warmup_fraction, 0.999);

        for bad in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = SimOptions::default().try_with_warmup(bad).unwrap_err();
            assert!(err.to_string().contains("warmup_fraction"), "{err}");
        }
        let err = SimOptions {
            prefetch_buffer_lines: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("prefetch_buffer_lines"), "{err}");
        let err = SimOptions {
            refill_threshold: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("refill_threshold"), "{err}");
        let err = SimOptions {
            stream_lookahead: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("stream_lookahead"), "{err}");
    }

    #[test]
    fn cold_misses_are_uncovered() {
        let cfg = SystemConfig::tiny_for_tests();
        let lines: Vec<u64> = (0..200).map(|i| i * 5000 + 7).collect();
        let t = trace_of(&lines, 0);
        let res = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        assert_eq!(res.accesses, 200);
        assert_eq!(res.uncovered_misses, 200);
        assert_eq!(res.covered_full + res.covered_partial, 0);
        assert_eq!(res.coverage(), 0.0);
        assert!(res.cycles > 0);
        assert_eq!(res.traffic.demand_fill, 200 * 64);
    }

    #[test]
    fn repeated_line_hits_l1() {
        let cfg = SystemConfig::tiny_for_tests();
        let t = trace_of(&[42, 42, 42, 42], 0);
        let res = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        assert_eq!(res.uncovered_misses, 1);
        assert_eq!(res.l1_hits, 3);
    }

    #[test]
    fn stride_pattern_becomes_l2_hits() {
        let cfg = SystemConfig::tiny_for_tests();
        // A long unit-stride scan: after training, lines are prefetched to L2.
        let lines: Vec<u64> = (0..300).map(|i| 100_000 + i).collect();
        let t = trace_of(&lines, 0);
        let res = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        assert!(
            res.l2_hits > 200,
            "stride prefetcher should cover the scan, got {}",
            res.l2_hits
        );
        assert!(res.traffic.stride_prefetch > 0);
    }

    #[test]
    fn dependent_misses_do_not_overlap() {
        let cfg = SystemConfig::tiny_for_tests();
        let make = |dependent: bool| {
            let mut t = Trace::new(TraceMeta {
                workload: "t".into(),
                cores: 4,
                ..Default::default()
            });
            for i in 0..400u64 {
                t.push(
                    MemAccess::read(CoreId::new(0), LineAddr::new(i * 3000 + 11))
                        .with_gap(1)
                        .with_dependence(dependent),
                );
            }
            t
        };
        let dep =
            CmpSimulator::new(&cfg, opts_no_warmup()).run(&make(true), &mut NullPrefetcher::new());
        let indep =
            CmpSimulator::new(&cfg, opts_no_warmup()).run(&make(false), &mut NullPrefetcher::new());
        assert!(dep.cycles > indep.cycles, "dependent chains must be slower");
        assert!(dep.mlp() < 1.1);
        assert!(
            indep.mlp() > 2.0,
            "independent misses should overlap, mlp={}",
            indep.mlp()
        );
    }

    /// A toy prefetcher that always predicts the next `n` sequential lines
    /// with zero lookup latency.
    #[derive(Debug)]
    struct NextLines(usize);

    impl Prefetcher for NextLines {
        fn name(&self) -> &'static str {
            "next-lines"
        }
        fn on_trigger(
            &mut self,
            _core: CoreId,
            line: LineAddr,
            now: Cycle,
            _dram: &mut DramModel,
        ) -> Option<StreamChunk> {
            let addresses = (1..=self.0 as u64)
                .map(|k| LineAddr::new(line.raw() + k))
                .collect();
            Some(StreamChunk {
                addresses,
                ready_at: now,
            })
        }
        fn next_chunk(&mut self, _core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
            StreamChunk::empty(now)
        }
        fn record(
            &mut self,
            _core: CoreId,
            _line: LineAddr,
            _prefetched: bool,
            _now: Cycle,
            _dram: &mut DramModel,
        ) {
        }
    }

    #[test]
    fn perfect_prediction_gives_high_coverage_and_speedup() {
        let mut cfg = SystemConfig::tiny_for_tests();
        // Disable the stride prefetcher so the temporal prefetcher gets credit.
        cfg.stride.confidence = u32::MAX;
        // A latency-bound pointer chase: every access depends on the previous
        // miss, so the baseline pays a full memory round trip per miss.
        let mut t = Trace::new(TraceMeta {
            workload: "chase".into(),
            cores: 4,
            ..Default::default()
        });
        for i in 0..2000u64 {
            t.push(
                MemAccess::read(CoreId::new(0), LineAddr::new(1_000_000 + i))
                    .with_gap(30)
                    .with_dependence(true),
            );
        }
        let base = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        let pf = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NextLines(64));
        assert!(pf.coverage() > 0.8, "coverage {}", pf.coverage());
        assert!(base.mlp() < 1.1, "pointer chase has no MLP");
        assert!(
            pf.speedup_over(&base) > 0.5,
            "speedup {}",
            pf.speedup_over(&base)
        );
        assert!(pf.prefetches_used > 0);
        assert!(pf.traffic.prefetch_data > 0);
    }

    #[test]
    fn bandwidth_bound_scan_is_not_slowed_down_much() {
        let mut cfg = SystemConfig::tiny_for_tests();
        cfg.stride.confidence = u32::MAX;
        // Independent back-to-back misses saturate the memory channel; the
        // prefetcher cannot help, but it must not hurt by more than a little.
        let lines: Vec<u64> = (0..2000).map(|i| 1_000_000 + i).collect();
        let t = trace_of(&lines, 0);
        let base = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        let pf = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NextLines(64));
        assert!(
            pf.speedup_over(&base) > -0.5,
            "prefetching must not catastrophically slow a bandwidth-bound scan: {}",
            pf.speedup_over(&base)
        );
    }

    #[test]
    fn erroneous_prefetches_are_counted() {
        let mut cfg = SystemConfig::tiny_for_tests();
        cfg.stride.confidence = u32::MAX;
        // Random-ish lines: sequential predictions are always wrong.
        let lines: Vec<u64> = (0..500).map(|i| (i * 7919 + 13) % 1_000_000).collect();
        let t = trace_of(&lines, 0);
        let pf = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NextLines(4));
        assert!(pf.prefetches_unused > 0);
        assert!(pf.accuracy() < 0.5);
    }

    #[test]
    fn warmup_excludes_early_accesses() {
        let cfg = SystemConfig::tiny_for_tests();
        let lines: Vec<u64> = (0..1000).map(|i| i * 777).collect();
        let t = trace_of(&lines, 0);
        let opts = SimOptions {
            warmup_fraction: 0.5,
            ..Default::default()
        };
        let res = CmpSimulator::new(&cfg, opts).run(&t, &mut NullPrefetcher::new());
        assert_eq!(res.accesses, 500);
        assert!(res.traffic.demand_fill <= 500 * 64);
    }

    #[test]
    fn multi_core_traces_share_the_l2() {
        let cfg = SystemConfig::tiny_for_tests();
        let mut t = Trace::new(TraceMeta {
            workload: "mc".into(),
            cores: 4,
            ..Default::default()
        });
        for i in 0..400u64 {
            let core = (i % 4) as u16;
            t.push(MemAccess::read(CoreId::new(core), LineAddr::new(i / 4 * 9000)).with_gap(1));
        }
        let res = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
        // Same line touched by 4 cores: one off-chip miss, one L2-hit-ish per
        // other core (plus their own L1 misses).
        assert!(res.l2_hits > 0);
        assert!(res.uncovered_misses >= 100);
        assert_eq!(res.accesses, 400);
    }

    #[test]
    #[should_panic(expected = "beyond configured")]
    fn trace_with_too_many_cores_panics() {
        let cfg = SystemConfig::tiny_for_tests();
        let t = trace_of(&[1, 2, 3], 7);
        let _ = CmpSimulator::new(&cfg, opts_no_warmup()).run(&t, &mut NullPrefetcher::new());
    }

    #[test]
    fn streamed_replay_is_bit_identical_to_materialized_replay() {
        let cfg = SystemConfig::tiny_for_tests();
        let lines: Vec<u64> = (0..2000).map(|i: u64| (i * 7919 + 13) % 500_000).collect();
        let t = trace_of(&lines, 0);
        // Warm-up mid-trace and a warmup-free run, across chunkings that do
        // and do not align with the warm-up boundary.
        for warmup in [0.0, 0.3] {
            let opts = SimOptions {
                warmup_fraction: warmup,
                ..Default::default()
            };
            let reference = CmpSimulator::new(&cfg, opts).run(&t, &mut NextLines(8));
            for chunk_len in [1usize, 97, 600, 10_000] {
                let mut source = t.chunks(chunk_len);
                let streamed = CmpSimulator::new(&cfg, opts)
                    .run_stream(&mut source, &mut NextLines(8))
                    .expect("in-memory source cannot fail");
                assert_eq!(
                    streamed.encode(),
                    reference.encode(),
                    "warmup {warmup}, chunk_len {chunk_len}"
                );
            }
        }
    }

    #[test]
    fn pipelined_replay_is_bit_identical_to_materialized_replay() {
        use stms_types::{ChunkPipeline, PipelineConfig, PipelineInput};
        let cfg = SystemConfig::tiny_for_tests();
        let lines: Vec<u64> = (0..2000).map(|i: u64| (i * 7919 + 13) % 500_000).collect();
        let t = trace_of(&lines, 0);
        // Sweep warm-up boundaries, chunkings that do and do not divide the
        // trace, and pipeline shapes from double-buffered to deep
        // multi-worker: the simulator must not be able to tell any of them
        // apart from the materialized replay.
        for warmup in [0.0, 0.3] {
            let opts = SimOptions {
                warmup_fraction: warmup,
                ..Default::default()
            };
            let reference = CmpSimulator::new(&cfg, opts).run(&t, &mut NextLines(8));
            for chunk_len in [97usize, 600] {
                for config in [
                    PipelineConfig::with_depth(2),
                    PipelineConfig::with_depth(8).with_decode_threads(3),
                ] {
                    let mut source = t.chunks(chunk_len);
                    let (piped, stats) =
                        ChunkPipeline::new(PipelineInput::Decoded(&mut source), config).run(
                            |piped| {
                                CmpSimulator::new(&cfg, opts)
                                    .run_stream(piped, &mut NextLines(8))
                                    .expect("in-memory source cannot fail")
                            },
                        );
                    assert_eq!(
                        piped.encode(),
                        reference.encode(),
                        "warmup {warmup}, chunk_len {chunk_len}, {config:?}"
                    );
                    assert!(stats.chunks_prefetched >= 1, "{config:?}");
                }
            }
        }
    }

    #[test]
    fn run_stream_works_through_a_dyn_source() {
        let cfg = SystemConfig::tiny_for_tests();
        let t = trace_of(&[10, 20, 30, 40], 0);
        let mut source = t.chunks(2);
        let dyn_source: &mut dyn TraceSource = &mut source;
        let res = CmpSimulator::new(&cfg, opts_no_warmup())
            .run_stream(dyn_source, &mut NullPrefetcher::new())
            .expect("in-memory source cannot fail");
        assert_eq!(res.accesses, 4);
    }
}
