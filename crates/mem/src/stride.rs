//! The base system's stride prefetcher (Table 1: 32-entry buffer, at most 16
//! distinct strides).
//!
//! All results in the paper report coverage *in excess of* this prefetcher,
//! so it is part of the simulated base system rather than of the temporal
//! prefetchers under study. It trains on the off-chip miss stream, detects
//! constant-stride sequences within 4 KB regions and, once confident,
//! prefetches `degree` lines ahead directly into the shared L2.

use crate::config::StrideConfig;
use stms_types::{CoreId, LineAddr};

/// Lines per 4 KB detection region.
const REGION_LINES: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    /// Region tag (line address / REGION_LINES) plus core, to separate
    /// per-core streams.
    region: u64,
    core: u16,
    last_line: LineAddr,
    stride: i64,
    confidence: u32,
    lru: u64,
    valid: bool,
}

/// Counters describing stride-prefetcher behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// Number of training observations (off-chip misses seen).
    pub trained: u64,
    /// Number of prefetches issued.
    pub prefetches: u64,
}

/// A simple per-region constant-stride detector.
///
/// # Example
///
/// ```
/// use stms_mem::{StrideConfig, StridePrefetcher};
/// use stms_types::{CoreId, LineAddr};
///
/// let mut sp = StridePrefetcher::new(StrideConfig { streams: 8, degree: 2, confidence: 2 });
/// let core = CoreId::new(0);
/// // A unit-stride scan: after a couple of observations it starts prefetching.
/// let mut predicted = Vec::new();
/// for i in 0..6u64 {
///     predicted.extend(sp.train(core, LineAddr::new(1000 + i)));
/// }
/// assert!(predicted.contains(&LineAddr::new(1004)));
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    entries: Vec<StrideEntry>,
    clock: u64,
    stats: StrideStats,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with the given table size and degree.
    pub fn new(cfg: StrideConfig) -> Self {
        StridePrefetcher {
            cfg,
            entries: vec![
                StrideEntry {
                    region: 0,
                    core: 0,
                    last_line: LineAddr::new(0),
                    stride: 0,
                    confidence: 0,
                    lru: 0,
                    valid: false,
                };
                cfg.streams
            ],
            clock: 0,
            stats: StrideStats::default(),
        }
    }

    /// Observes an off-chip miss and returns the lines to prefetch (possibly
    /// empty).
    pub fn train(&mut self, core: CoreId, line: LineAddr) -> Vec<LineAddr> {
        self.clock += 1;
        self.stats.trained += 1;
        let clock = self.clock;
        let region = line.raw() / REGION_LINES;
        let core_idx = core.index() as u16;

        // Find an existing entry for this region+core.
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.region == region && e.core == core_idx)
        {
            let delta = line.delta_from(entry.last_line);
            entry.lru = clock;
            if delta == 0 {
                return Vec::new();
            }
            if delta == entry.stride {
                entry.confidence = entry.confidence.saturating_add(1);
            } else {
                entry.stride = delta;
                entry.confidence = 1;
            }
            entry.last_line = line;
            if entry.confidence >= self.cfg.confidence && entry.stride != 0 {
                let stride = entry.stride;
                let degree = self.cfg.degree;
                self.stats.prefetches += degree as u64;
                return (1..=degree as i64)
                    .map(|k| line.offset(stride * k))
                    .collect();
            }
            return Vec::new();
        }

        // Allocate a new entry (LRU replacement).
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("streams > 0");
        *victim = StrideEntry {
            region,
            core: core_idx,
            last_line: line,
            stride: 0,
            confidence: 0,
            lru: clock,
            valid: true,
        };
        Vec::new()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> StrideStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> StridePrefetcher {
        StridePrefetcher::new(StrideConfig {
            streams: 4,
            degree: 2,
            confidence: 2,
        })
    }

    #[test]
    fn unit_stride_detected_after_confidence() {
        let mut p = sp();
        let core = CoreId::new(0);
        assert!(p.train(core, LineAddr::new(100)).is_empty());
        assert!(
            p.train(core, LineAddr::new(101)).is_empty(),
            "confidence 1 of 2"
        );
        let out = p.train(core, LineAddr::new(102));
        assert_eq!(out, vec![LineAddr::new(103), LineAddr::new(104)]);
    }

    #[test]
    fn non_unit_stride_detected() {
        let mut p = sp();
        let core = CoreId::new(1);
        p.train(core, LineAddr::new(200));
        p.train(core, LineAddr::new(204));
        let out = p.train(core, LineAddr::new(208));
        assert_eq!(out, vec![LineAddr::new(212), LineAddr::new(216)]);
    }

    #[test]
    fn random_pattern_never_prefetches() {
        let mut p = sp();
        let core = CoreId::new(0);
        let mut total = 0;
        for line in [5u64, 900, 17, 3000, 42, 77777, 13].map(LineAddr::new) {
            total += p.train(core, line).len();
        }
        assert_eq!(total, 0);
        assert_eq!(p.stats().prefetches, 0);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = sp();
        let core = CoreId::new(0);
        p.train(core, LineAddr::new(10));
        p.train(core, LineAddr::new(11));
        p.train(core, LineAddr::new(12)); // locked, prefetching
        assert!(p.train(core, LineAddr::new(20)).is_empty(), "stride broke");
        // After two consecutive identical deltas the new stride locks again.
        assert_eq!(
            p.train(core, LineAddr::new(28)),
            vec![LineAddr::new(36), LineAddr::new(44)],
            "locked onto new stride"
        );
    }

    #[test]
    fn distinct_cores_do_not_interfere() {
        let mut p = sp();
        p.train(CoreId::new(0), LineAddr::new(100));
        p.train(CoreId::new(1), LineAddr::new(101));
        p.train(CoreId::new(0), LineAddr::new(101));
        p.train(CoreId::new(1), LineAddr::new(102));
        // Each core has seen only one delta so far; nobody should have locked.
        assert_eq!(p.train(CoreId::new(0), LineAddr::new(102)).len(), 2);
    }

    #[test]
    fn duplicate_miss_is_ignored() {
        let mut p = sp();
        let core = CoreId::new(0);
        p.train(core, LineAddr::new(50));
        assert!(p.train(core, LineAddr::new(50)).is_empty());
    }

    #[test]
    fn table_replacement_evicts_lru_region() {
        let mut p = sp();
        let core = CoreId::new(0);
        // Touch 5 distinct regions with a 4-entry table.
        for r in 0..5u64 {
            p.train(core, LineAddr::new(r * REGION_LINES));
        }
        // Region 0 was evicted; training it again restarts from scratch.
        p.train(core, LineAddr::new(1));
        p.train(core, LineAddr::new(2));
        let out = p.train(core, LineAddr::new(3));
        assert_eq!(out.len(), 2);
    }
}
