//! Results produced by one simulation run.

use crate::dram::TrafficStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters and derived metrics from a single simulation of one trace with
/// one prefetcher configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the prefetcher that was simulated.
    pub prefetcher: String,
    /// Name of the workload that produced the trace.
    pub workload: String,

    /// Total instructions committed (all cores), the numerator of the
    /// aggregate user-IPC throughput metric.
    pub instructions: u64,
    /// Elapsed cycles (the slowest core's clock).
    pub cycles: u64,

    /// Total memory accesses replayed.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (including lines brought in by the stride prefetcher).
    pub l2_hits: u64,

    /// Off-chip demand read misses that went to memory (not covered).
    pub uncovered_misses: u64,
    /// Of the uncovered misses, those whose address was queued in an active
    /// stream but had not been prefetched in time (lost opportunity due to
    /// lookup latency or limited lookahead).
    pub stream_lost_misses: u64,
    /// Off-chip misses fully hidden by the prefetcher (data was resident in
    /// the prefetch buffer when requested).
    pub covered_full: u64,
    /// Off-chip misses partially hidden (prefetch was in flight when the
    /// demand request arrived).
    pub covered_partial: u64,
    /// Off-chip write misses (not eligible for coverage accounting).
    pub write_misses: u64,

    /// Prefetches issued to memory.
    pub prefetches_issued: u64,
    /// Prefetched blocks that satisfied a demand access.
    pub prefetches_used: u64,
    /// Prefetched blocks evicted or left unused (erroneous prefetches).
    pub prefetches_unused: u64,

    /// Number of epochs of overlapping off-chip misses (for MLP).
    pub miss_epochs: u64,
    /// Off-chip misses that participated in epochs (uncovered demand reads).
    pub epoch_misses: u64,

    /// Bytes moved on the memory channel, by traffic class.
    pub traffic: TrafficStats,
}

impl SimResult {
    /// Baseline off-chip read misses that the prefetcher had the opportunity
    /// to cover: covered (fully or partially) plus uncovered demand reads.
    pub fn base_read_misses(&self) -> u64 {
        self.uncovered_misses + self.covered_full + self.covered_partial
    }

    /// Prefetch coverage: fraction of off-chip read misses eliminated
    /// (fully or partially covered), as plotted in Figures 4, 5, 8 and 9.
    pub fn coverage(&self) -> f64 {
        let base = self.base_read_misses();
        if base == 0 {
            0.0
        } else {
            (self.covered_full + self.covered_partial) as f64 / base as f64
        }
    }

    /// Coverage counting only fully-hidden misses.
    pub fn full_coverage(&self) -> f64 {
        let base = self.base_read_misses();
        if base == 0 {
            0.0
        } else {
            self.covered_full as f64 / base as f64
        }
    }

    /// Prefetch accuracy: used prefetches / issued prefetches.
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_used as f64 / self.prefetches_issued as f64
        }
    }

    /// Aggregate user instructions per cycle (the paper's throughput metric).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same trace
    /// (IPC ratio minus one, e.g. `0.10` = 10% faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc() - 1.0
        }
    }

    /// Memory-level parallelism of off-chip reads: mean number of overlapping
    /// misses per miss epoch (Table 2).
    pub fn mlp(&self) -> f64 {
        if self.miss_epochs == 0 {
            1.0
        } else {
            self.epoch_misses as f64 / self.miss_epochs as f64
        }
    }

    /// Bytes of useful data moved: demand fills, writebacks, stride
    /// prefetches and prefetched lines that were actually used.
    pub fn useful_bytes(&self) -> u64 {
        let line = 64;
        self.traffic.base_system() + self.prefetches_used * line
    }

    /// Overhead bytes: meta-data traffic plus erroneous prefetch data.
    pub fn overhead_bytes(&self) -> u64 {
        let line = 64;
        self.traffic.meta_total() + self.prefetches_unused * line
    }

    /// The paper's Figure 7/8 metric: overhead bytes per useful data byte.
    pub fn overhead_per_useful_byte(&self) -> f64 {
        let useful = self.useful_bytes();
        if useful == 0 {
            0.0
        } else {
            self.overhead_bytes() as f64 / useful as f64
        }
    }

    /// Breakdown of overhead traffic (record, update, lookup, erroneous
    /// prefetches) each normalized to useful data bytes, in the order the
    /// paper's Figure 7 stacks them.
    pub fn overhead_breakdown(&self) -> OverheadBreakdown {
        let useful = self.useful_bytes().max(1) as f64;
        OverheadBreakdown {
            record: self.traffic.meta_record as f64 / useful,
            update: self.traffic.meta_update as f64 / useful,
            lookup: self.traffic.meta_lookup as f64 / useful,
            erroneous: (self.prefetches_unused * 64) as f64 / useful,
        }
    }
}

/// Version of the [`SimResult::encode`] payload codec. The campaign result
/// cache seals encoded results in a `stms_types::blob` envelope stamped with
/// this version; bump it whenever a counter is added, removed or reordered.
pub const SIM_RESULT_CODEC_VERSION: u16 = 1;

/// Error returned when [`SimResult::decode`] is given a malformed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeResultError {
    /// The buffer ended before the named field.
    Truncated {
        /// Which encoded field was cut off.
        what: &'static str,
    },
    /// A string field held bytes that were not UTF-8.
    InvalidString,
    /// Extra bytes followed the last field.
    TrailingData,
}

impl fmt::Display for DecodeResultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeResultError::Truncated { what } => {
                write!(f, "malformed sim result: truncated at {what}")
            }
            DecodeResultError::InvalidString => {
                write!(f, "malformed sim result: string not utf-8")
            }
            DecodeResultError::TrailingData => {
                write!(f, "malformed sim result: trailing bytes")
            }
        }
    }
}

impl std::error::Error for DecodeResultError {}

struct ResultReader<'a> {
    data: &'a [u8],
}

impl ResultReader<'_> {
    fn u64(&mut self, what: &'static str) -> Result<u64, DecodeResultError> {
        let (head, rest) = self
            .data
            .split_at_checked(8)
            .ok_or(DecodeResultError::Truncated { what })?;
        self.data = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn string(&mut self, what: &'static str) -> Result<String, DecodeResultError> {
        let len = self.u64(what)? as usize;
        let (head, rest) = self
            .data
            .split_at_checked(len)
            .ok_or(DecodeResultError::Truncated { what })?;
        self.data = rest;
        String::from_utf8(head.to_vec()).map_err(|_| DecodeResultError::InvalidString)
    }
}

impl SimResult {
    /// Encodes the result as a compact little-endian binary record
    /// (length-prefixed strings followed by every counter in declaration
    /// order), for persistence in the campaign's on-disk result cache.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.prefetcher.len() + self.workload.len());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_str(&mut out, &self.prefetcher);
        put_str(&mut out, &self.workload);
        for counter in self.counters() {
            out.extend_from_slice(&counter.to_le_bytes());
        }
        out
    }

    /// Decodes a result previously produced by [`SimResult::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeResultError`] when the buffer is truncated, holds a
    /// non-UTF-8 string, or carries trailing bytes. Cache readers treat any
    /// error as a miss and re-run the simulation.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeResultError> {
        let mut r = ResultReader { data };
        let prefetcher = r.string("prefetcher")?;
        let workload = r.string("workload")?;
        let mut result = SimResult {
            prefetcher,
            workload,
            ..SimResult::default()
        };
        let mut counters = [0u64; SimResult::COUNTER_FIELDS];
        for (i, slot) in counters.iter_mut().enumerate() {
            *slot = r.u64(COUNTER_NAMES[i])?;
        }
        result.set_counters(&counters);
        if !r.data.is_empty() {
            return Err(DecodeResultError::TrailingData);
        }
        Ok(result)
    }

    /// Number of `u64` counters in the binary encoding.
    const COUNTER_FIELDS: usize = 22;

    /// Every counter in encoding order. The exhaustive destructuring ties
    /// the codec to the struct definition: adding a field will not compile
    /// until it is encoded (and [`SIM_RESULT_CODEC_VERSION`] is bumped).
    fn counters(&self) -> [u64; Self::COUNTER_FIELDS] {
        let SimResult {
            prefetcher: _,
            workload: _,
            instructions,
            cycles,
            accesses,
            l1_hits,
            l2_hits,
            uncovered_misses,
            stream_lost_misses,
            covered_full,
            covered_partial,
            write_misses,
            prefetches_issued,
            prefetches_used,
            prefetches_unused,
            miss_epochs,
            epoch_misses,
            traffic,
        } = self;
        let TrafficStats {
            demand_fill,
            writeback,
            stride_prefetch,
            prefetch_data,
            meta_lookup,
            meta_update,
            meta_record,
        } = traffic;
        [
            *instructions,
            *cycles,
            *accesses,
            *l1_hits,
            *l2_hits,
            *uncovered_misses,
            *stream_lost_misses,
            *covered_full,
            *covered_partial,
            *write_misses,
            *prefetches_issued,
            *prefetches_used,
            *prefetches_unused,
            *miss_epochs,
            *epoch_misses,
            *demand_fill,
            *writeback,
            *stride_prefetch,
            *prefetch_data,
            *meta_lookup,
            *meta_update,
            *meta_record,
        ]
    }

    fn set_counters(&mut self, c: &[u64; Self::COUNTER_FIELDS]) {
        [
            self.instructions,
            self.cycles,
            self.accesses,
            self.l1_hits,
            self.l2_hits,
            self.uncovered_misses,
            self.stream_lost_misses,
            self.covered_full,
            self.covered_partial,
            self.write_misses,
            self.prefetches_issued,
            self.prefetches_used,
            self.prefetches_unused,
            self.miss_epochs,
            self.epoch_misses,
            self.traffic.demand_fill,
            self.traffic.writeback,
            self.traffic.stride_prefetch,
            self.traffic.prefetch_data,
            self.traffic.meta_lookup,
            self.traffic.meta_update,
            self.traffic.meta_record,
        ] = *c;
    }
}

/// Field names used in truncation errors, in encoding order.
const COUNTER_NAMES: [&str; SimResult::COUNTER_FIELDS] = [
    "instructions",
    "cycles",
    "accesses",
    "l1_hits",
    "l2_hits",
    "uncovered_misses",
    "stream_lost_misses",
    "covered_full",
    "covered_partial",
    "write_misses",
    "prefetches_issued",
    "prefetches_used",
    "prefetches_unused",
    "miss_epochs",
    "epoch_misses",
    "traffic.demand_fill",
    "traffic.writeback",
    "traffic.stride_prefetch",
    "traffic.prefetch_data",
    "traffic.meta_lookup",
    "traffic.meta_update",
    "traffic.meta_record",
];

/// Per-source overhead traffic, normalized to useful data bytes (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// History-buffer recording traffic.
    pub record: f64,
    /// Index-table update traffic.
    pub update: f64,
    /// Index-table and history-buffer lookup traffic.
    pub lookup: f64,
    /// Erroneously prefetched data.
    pub erroneous: f64,
}

impl OverheadBreakdown {
    /// Total overhead per useful byte.
    pub fn total(&self) -> f64 {
        self.record + self.update + self.lookup + self.erroneous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::TrafficClass;

    fn sample() -> SimResult {
        let mut r = SimResult {
            prefetcher: "test".into(),
            workload: "w".into(),
            instructions: 1000,
            cycles: 2000,
            accesses: 500,
            l1_hits: 300,
            l2_hits: 100,
            uncovered_misses: 40,
            stream_lost_misses: 5,
            covered_full: 50,
            covered_partial: 10,
            write_misses: 3,
            prefetches_issued: 80,
            prefetches_used: 60,
            prefetches_unused: 20,
            miss_epochs: 30,
            epoch_misses: 45,
            ..Default::default()
        };
        r.traffic.add(TrafficClass::DemandFill, 40 * 64);
        r.traffic.add(TrafficClass::MetaLookup, 10 * 64);
        r.traffic.add(TrafficClass::MetaUpdate, 20 * 64);
        r.traffic.add(TrafficClass::MetaRecord, 5 * 64);
        r
    }

    #[test]
    fn coverage_math() {
        let r = sample();
        assert_eq!(r.base_read_misses(), 100);
        assert!((r.coverage() - 0.6).abs() < 1e-9);
        assert!((r.full_coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn accuracy_and_ipc() {
        let r = sample();
        assert!((r.accuracy() - 0.75).abs() < 1e-9);
        assert!((r.ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_relative_to_baseline() {
        let fast = sample();
        let mut slow = sample();
        slow.cycles = 4000;
        assert!(
            (fast.speedup_over(&slow) - 1.0).abs() < 1e-9,
            "twice as fast = +100%"
        );
        assert_eq!(fast.speedup_over(&fast), 0.0);
    }

    #[test]
    fn mlp_definition() {
        let r = sample();
        assert!((r.mlp() - 1.5).abs() < 1e-9);
        let empty = SimResult::default();
        assert_eq!(empty.mlp(), 1.0);
        assert_eq!(empty.coverage(), 0.0);
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.overhead_per_useful_byte(), 0.0);
    }

    #[test]
    fn binary_codec_round_trips_every_field() {
        let r = sample();
        let bytes = r.encode();
        let back = SimResult::decode(&bytes).expect("decode");
        assert_eq!(back, r);
        // The default (all-zero) result round-trips too.
        let empty = SimResult::default();
        assert_eq!(SimResult::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_malformed_buffers() {
        let bytes = sample().encode();
        assert!(matches!(
            SimResult::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeResultError::Truncated { .. })
        ));
        assert!(matches!(
            SimResult::decode(&[]),
            Err(DecodeResultError::Truncated { .. })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            SimResult::decode(&long),
            Err(DecodeResultError::TrailingData)
        );
        // A string length pointing past the end is truncation, not a panic.
        let mut huge = bytes;
        huge[0] = 0xff;
        assert!(SimResult::decode(&huge).is_err());
    }

    #[test]
    fn overhead_accounting() {
        let r = sample();
        let useful = (40 * 64 + 60 * 64) as f64;
        let overhead = (10 * 64 + 20 * 64 + 5 * 64 + 20 * 64) as f64;
        assert!((r.overhead_per_useful_byte() - overhead / useful).abs() < 1e-9);
        let bd = r.overhead_breakdown();
        assert!((bd.total() - overhead / useful).abs() < 1e-9);
        assert!(bd.update > bd.lookup);
    }
}
