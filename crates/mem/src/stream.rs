//! On-chip stream-following machinery: the per-core FIFO address queue and
//! the small fully-associative prefetch buffer (§4.2 of the paper).
//!
//! These structures are owned by the simulation engine and shared by every
//! prefetcher implementation; they correspond to the "stream engine",
//! "prefetch buffer" and "address queue" blocks of Figure 2.

use std::collections::VecDeque;
use stms_types::{Cycle, LineAddr};

/// One prefetched block held in the prefetch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchedBlock {
    /// The prefetched line.
    pub line: LineAddr,
    /// Cycle at which the data arrives from memory.
    pub available_at: Cycle,
}

/// The small, fully-associative per-core prefetch buffer (2 KB = 32 lines in
/// the paper). Prefetched blocks are held here instead of polluting the
/// caches; demand accesses that match are "covered" misses.
///
/// # Example
///
/// ```
/// use stms_mem::PrefetchBuffer;
/// use stms_types::{Cycle, LineAddr};
///
/// let mut buf = PrefetchBuffer::new(2);
/// buf.insert(LineAddr::new(1), Cycle::new(100));
/// buf.insert(LineAddr::new(2), Cycle::new(120));
/// // Inserting a third block evicts the oldest unused one.
/// let evicted = buf.insert(LineAddr::new(3), Cycle::new(140)).unwrap();
/// assert_eq!(evicted.line, LineAddr::new(1));
/// assert!(buf.take(LineAddr::new(2)).is_some());
/// assert!(buf.take(LineAddr::new(2)).is_none(), "consumed");
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    capacity: usize,
    blocks: VecDeque<PrefetchedBlock>,
}

impl PrefetchBuffer {
    /// Creates a prefetch buffer holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer capacity must be non-zero");
        PrefetchBuffer {
            capacity,
            blocks: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of blocks currently buffered.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the buffer holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `line` is buffered (without consuming it).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.blocks.iter().any(|b| b.line == line)
    }

    /// Inserts a prefetched block, evicting the oldest block if full. The
    /// evicted block (which was never used) is returned so the caller can
    /// account for it as an erroneous prefetch. Re-inserting an already
    /// buffered line refreshes its availability and evicts nothing.
    pub fn insert(&mut self, line: LineAddr, available_at: Cycle) -> Option<PrefetchedBlock> {
        if let Some(existing) = self.blocks.iter_mut().find(|b| b.line == line) {
            existing.available_at = existing.available_at.min(available_at);
            return None;
        }
        let evicted = if self.blocks.len() >= self.capacity {
            self.blocks.pop_front()
        } else {
            None
        };
        self.blocks
            .push_back(PrefetchedBlock { line, available_at });
        evicted
    }

    /// Consumes `line` if buffered, returning the block. This models a demand
    /// access being satisfied from the prefetch buffer.
    pub fn take(&mut self, line: LineAddr) -> Option<PrefetchedBlock> {
        let idx = self.blocks.iter().position(|b| b.line == line)?;
        self.blocks.remove(idx)
    }

    /// Removes and returns every buffered block (end-of-simulation
    /// accounting of never-used prefetches).
    pub fn drain(&mut self) -> Vec<PrefetchedBlock> {
        self.blocks.drain(..).collect()
    }
}

/// The per-core stream state: the FIFO queue of predicted addresses not yet
/// prefetched, plus the stream's availability time.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    queue: VecDeque<LineAddr>,
    ready_at: Cycle,
    active: bool,
    exhausted: bool,
}

impl StreamState {
    /// Creates an inactive stream.
    pub fn new() -> Self {
        StreamState::default()
    }

    /// Whether a stream is currently being followed.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the predictor has said it has no more addresses for this
    /// stream.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Cycle at which queued addresses are available for prefetching.
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Number of queued (not yet prefetched) addresses.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Begins a new stream, discarding any previous one.
    pub fn start(&mut self, addresses: Vec<LineAddr>, ready_at: Cycle) {
        self.queue = addresses.into();
        self.ready_at = ready_at;
        self.active = true;
        self.exhausted = false;
    }

    /// Appends more addresses supplied by the predictor.
    pub fn extend(&mut self, addresses: Vec<LineAddr>, ready_at: Cycle) {
        if addresses.is_empty() {
            self.exhausted = true;
            return;
        }
        self.ready_at = self.ready_at.max(ready_at);
        self.queue.extend(addresses);
    }

    /// Stops following the current stream.
    pub fn squash(&mut self) {
        self.queue.clear();
        self.active = false;
        self.exhausted = false;
    }

    /// Whether `line` is waiting in the queue.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.queue.iter().any(|&l| l == line)
    }

    /// Pops the next address to prefetch.
    pub fn pop(&mut self) -> Option<LineAddr> {
        self.queue.pop_front()
    }

    /// Drops queue entries up to and including `line` (used when a demand
    /// miss overtakes the stream: earlier entries are behind the demand
    /// point and no longer worth prefetching). Returns how many entries were
    /// dropped, including the matching one.
    pub fn drop_through(&mut self, line: LineAddr) -> usize {
        let Some(pos) = self.queue.iter().position(|&l| l == line) else {
            return 0;
        };
        let dropped = pos + 1;
        self.queue.drain(..dropped);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_buffer_insert_take() {
        let mut b = PrefetchBuffer::new(4);
        assert!(b.is_empty());
        assert!(b.insert(LineAddr::new(1), Cycle::new(10)).is_none());
        assert!(b.contains(LineAddr::new(1)));
        assert_eq!(b.len(), 1);
        let blk = b.take(LineAddr::new(1)).unwrap();
        assert_eq!(blk.available_at, Cycle::new(10));
        assert!(b.take(LineAddr::new(1)).is_none());
    }

    #[test]
    fn prefetch_buffer_fifo_eviction() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(LineAddr::new(1), Cycle::new(1));
        b.insert(LineAddr::new(2), Cycle::new(2));
        let ev = b.insert(LineAddr::new(3), Cycle::new(3)).unwrap();
        assert_eq!(ev.line, LineAddr::new(1));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn prefetch_buffer_reinsert_keeps_earliest_availability() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(LineAddr::new(1), Cycle::new(100));
        assert!(b.insert(LineAddr::new(1), Cycle::new(50)).is_none());
        assert_eq!(
            b.take(LineAddr::new(1)).unwrap().available_at,
            Cycle::new(50)
        );
    }

    #[test]
    fn prefetch_buffer_drain_returns_unused() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(LineAddr::new(1), Cycle::new(1));
        b.insert(LineAddr::new(2), Cycle::new(2));
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn prefetch_buffer_zero_capacity_panics() {
        let _ = PrefetchBuffer::new(0);
    }

    #[test]
    fn stream_state_lifecycle() {
        let mut s = StreamState::new();
        assert!(!s.is_active());
        s.start(vec![LineAddr::new(1), LineAddr::new(2)], Cycle::new(500));
        assert!(s.is_active());
        assert_eq!(s.ready_at(), Cycle::new(500));
        assert_eq!(s.queued(), 2);
        assert!(s.contains(LineAddr::new(2)));
        assert_eq!(s.pop(), Some(LineAddr::new(1)));
        s.squash();
        assert!(!s.is_active());
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn stream_extend_and_exhaustion() {
        let mut s = StreamState::new();
        s.start(vec![LineAddr::new(1)], Cycle::new(10));
        s.extend(vec![LineAddr::new(2)], Cycle::new(20));
        assert_eq!(s.queued(), 2);
        assert_eq!(s.ready_at(), Cycle::new(20));
        assert!(!s.is_exhausted());
        s.extend(Vec::new(), Cycle::new(30));
        assert!(s.is_exhausted());
    }

    #[test]
    fn stream_drop_through() {
        let mut s = StreamState::new();
        s.start(
            vec![
                LineAddr::new(1),
                LineAddr::new(2),
                LineAddr::new(3),
                LineAddr::new(4),
            ],
            Cycle::ZERO,
        );
        assert_eq!(s.drop_through(LineAddr::new(3)), 3);
        assert_eq!(s.queued(), 1);
        assert!(s.contains(LineAddr::new(4)));
        assert_eq!(s.drop_through(LineAddr::new(99)), 0);
    }
}
