//! Miss Status Holding Register (MSHR) file.
//!
//! The timing model uses an MSHR file per core to bound how many off-chip
//! misses can be outstanding simultaneously (and therefore how much
//! memory-level parallelism a core can express). Requests to the same line
//! merge into the existing entry.

use stms_types::{Cycle, LineAddr};

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The missing line.
    pub line: LineAddr,
    /// Cycle at which the fill completes.
    pub completes_at: Cycle,
    /// Number of requests merged into this entry.
    pub merged: u32,
}

/// A bounded file of outstanding misses.
///
/// # Example
///
/// ```
/// use stms_mem::MshrFile;
/// use stms_types::{Cycle, LineAddr};
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(LineAddr::new(1), Cycle::new(100)));
/// assert!(mshrs.allocate(LineAddr::new(2), Cycle::new(120)));
/// assert!(!mshrs.allocate(LineAddr::new(3), Cycle::new(130)), "file is full");
/// mshrs.retire_completed(Cycle::new(110));
/// assert_eq!(mshrs.outstanding(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates an MSHR file with space for `capacity` outstanding misses.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Whether no more misses can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether a miss to `line` is already outstanding.
    pub fn lookup(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Tries to track a new outstanding miss. Returns `false` (and does
    /// nothing) if the file is full. A request to an already-outstanding line
    /// merges and always succeeds.
    pub fn allocate(&mut self, line: LineAddr, completes_at: Cycle) -> bool {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.line == line) {
            entry.merged += 1;
            return true;
        }
        if self.is_full() {
            return false;
        }
        self.entries.push(MshrEntry {
            line,
            completes_at,
            merged: 1,
        });
        true
    }

    /// Removes entries whose fills completed at or before `now`, returning
    /// how many were retired.
    pub fn retire_completed(&mut self, now: Cycle) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.completes_at > now);
        before - self.entries.len()
    }

    /// Earliest completion time among outstanding misses.
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.completes_at).min()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(!m.is_full());
        assert!(m.allocate(LineAddr::new(1), Cycle::new(10)));
        assert!(m.allocate(LineAddr::new(2), Cycle::new(20)));
        assert!(m.is_full());
        assert!(!m.allocate(LineAddr::new(3), Cycle::new(30)));
        assert_eq!(m.outstanding(), 2);
    }

    #[test]
    fn same_line_merges_even_when_full() {
        let mut m = MshrFile::new(1);
        assert!(m.allocate(LineAddr::new(1), Cycle::new(10)));
        assert!(m.allocate(LineAddr::new(1), Cycle::new(99)));
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.lookup(LineAddr::new(1)).unwrap().merged, 2);
        // The completion time of the original entry is preserved.
        assert_eq!(
            m.lookup(LineAddr::new(1)).unwrap().completes_at,
            Cycle::new(10)
        );
    }

    #[test]
    fn retire_removes_only_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr::new(1), Cycle::new(10));
        m.allocate(LineAddr::new(2), Cycle::new(20));
        m.allocate(LineAddr::new(3), Cycle::new(30));
        assert_eq!(m.retire_completed(Cycle::new(20)), 2);
        assert_eq!(m.outstanding(), 1);
        assert!(m.lookup(LineAddr::new(3)).is_some());
    }

    #[test]
    fn earliest_completion_and_clear() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.earliest_completion(), None);
        m.allocate(LineAddr::new(1), Cycle::new(50));
        m.allocate(LineAddr::new(2), Cycle::new(40));
        assert_eq!(m.earliest_completion(), Some(Cycle::new(40)));
        m.clear();
        assert_eq!(m.outstanding(), 0);
    }
}
