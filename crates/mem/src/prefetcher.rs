//! The prefetcher interface seen by the simulation engine.
//!
//! Temporal-streaming prefetchers (idealized TMS, STMS, and the baselines
//! from prior work) implement [`Prefetcher`]. The engine owns the on-chip
//! stream-following machinery (per-core FIFO address queue and prefetch
//! buffer, see [`crate::stream`]); the prefetcher supplies *which* addresses
//! to stream, *when* they become available (meta-data lookup latency) and
//! performs its own meta-data traffic through the [`crate::DramModel`] handed
//! to it.

use crate::dram::DramModel;
use stms_types::{CoreId, Cycle, LineAddr};

/// Addresses returned by a predictor lookup, plus the cycle at which they are
/// available for prefetching (i.e. after the meta-data round trips).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// Predicted future miss addresses, in expected demand order.
    pub addresses: Vec<LineAddr>,
    /// Cycle at which the addresses become available to the stream engine.
    pub ready_at: Cycle,
}

impl StreamChunk {
    /// A chunk carrying no addresses: the stream is exhausted.
    pub fn empty(now: Cycle) -> Self {
        StreamChunk {
            addresses: Vec::new(),
            ready_at: now,
        }
    }

    /// Whether the chunk carries no addresses.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }
}

/// A temporal-streaming (address-correlating) prefetcher.
///
/// The engine calls the hooks in this order for each core:
///
/// 1. [`Prefetcher::on_trigger`] on an off-chip demand read miss that was not
///    covered by an active stream — the prefetcher looks up its meta-data and
///    may return the first [`StreamChunk`] of a new stream.
/// 2. [`Prefetcher::next_chunk`] whenever the engine's address queue for the
///    active stream runs low.
/// 3. [`Prefetcher::record`] for every correct-path off-chip read miss and
///    every prefetched hit, so the prefetcher can log the address in its
///    history and (possibly) update its index.
/// 4. [`Prefetcher::finish`] once at the end of simulation.
pub trait Prefetcher {
    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Handles an off-chip demand read miss that starts (or restarts) a
    /// stream. Returning `None` means no stream was found and nothing will be
    /// prefetched until the next trigger.
    fn on_trigger(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        dram: &mut DramModel,
    ) -> Option<StreamChunk>;

    /// Supplies more addresses for the core's active stream. Returning an
    /// empty chunk ends the stream.
    fn next_chunk(&mut self, core: CoreId, now: Cycle, dram: &mut DramModel) -> StreamChunk;

    /// Records a correct-path off-chip read miss (`prefetched == false`) or a
    /// prefetched hit (`prefetched == true`) into the predictor meta-data.
    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        prefetched: bool,
        now: Cycle,
        dram: &mut DramModel,
    );

    /// Notification that a prefetched block was evicted from the prefetch
    /// buffer without being used. Prefetchers may use this to annotate
    /// end-of-stream meta-data. The default implementation ignores it.
    fn on_unused(&mut self, _core: CoreId, _line: LineAddr) {}

    /// Called once when simulation ends so buffered meta-data (e.g. the
    /// cache-block-sized history write buffer) can be flushed.
    fn finish(&mut self, _now: Cycle, _dram: &mut DramModel) {}
}

/// A prefetcher that never prefetches: the baseline system (stride prefetcher
/// only, which the engine models separately).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates a no-op prefetcher.
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn on_trigger(
        &mut self,
        _core: CoreId,
        _line: LineAddr,
        _now: Cycle,
        _dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        None
    }

    fn next_chunk(&mut self, _core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
        StreamChunk::empty(now)
    }

    fn record(
        &mut self,
        _core: CoreId,
        _line: LineAddr,
        _prefetched: bool,
        _now: Cycle,
        _dram: &mut DramModel,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn null_prefetcher_does_nothing() {
        let mut p = NullPrefetcher::new();
        let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
        assert_eq!(p.name(), "baseline");
        assert!(p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut dram)
            .is_none());
        assert!(p
            .next_chunk(CoreId::new(0), Cycle::ZERO, &mut dram)
            .is_empty());
        p.record(
            CoreId::new(0),
            LineAddr::new(1),
            false,
            Cycle::ZERO,
            &mut dram,
        );
        p.on_unused(CoreId::new(0), LineAddr::new(1));
        p.finish(Cycle::ZERO, &mut dram);
        assert_eq!(dram.traffic().total(), 0);
    }

    #[test]
    fn stream_chunk_empty() {
        let c = StreamChunk::empty(Cycle::new(5));
        assert!(c.is_empty());
        assert_eq!(c.ready_at, Cycle::new(5));
        let full = StreamChunk {
            addresses: vec![LineAddr::new(1)],
            ready_at: Cycle::ZERO,
        };
        assert!(!full.is_empty());
    }
}
