//! Property tests for the telemetry primitives: snapshot merge must be
//! associative and commutative (shard aggregation can fold in any order),
//! counters and histograms must saturate rather than wrap near `u64::MAX`,
//! and concurrent recording must lose no samples.

use proptest::prelude::*;
use stms_obs::{HistogramSnapshot, Registry, Snapshot, BUCKETS};

/// Builds a registry-backed snapshot from generated samples, so merges are
/// exercised against snapshots the real recording path produces.
fn snapshot_of(counters: &[(u8, u64)], samples: &[(u8, u64)]) -> Snapshot {
    let registry = Registry::new();
    for &(name, value) in counters {
        registry.counter(&format!("c{}", name % 4)).add(value);
    }
    for &(name, value) in samples {
        registry.histogram(&format!("h{}", name % 4)).record(value);
    }
    registry.snapshot()
}

// Values stay below 2^53 so snapshots survive the JSON number round trip
// (the document stores integers in f64-exact range, like every JSON
// consumer); saturation near `u64::MAX` has its own property below.
fn arb_samples() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..8, 0u64..(1 << 45)), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_associative_and_commutative(
        a in (arb_samples(), arb_samples()),
        b in (arb_samples(), arb_samples()),
        c in (arb_samples(), arb_samples()),
    ) {
        let (sa, sb, sc) = (
            snapshot_of(&a.0, &a.1),
            snapshot_of(&b.0, &b.1),
            snapshot_of(&c.0, &c.1),
        );

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Merging preserves total sample counts (saturating-safe for these
        // sizes) and survives a JSON round trip.
        let direct = snapshot_of(
            &[a.0.clone(), b.0.clone()].concat(),
            &[a.1.clone(), b.1.clone()].concat(),
        );
        prop_assert_eq!(&ab, &direct);
        prop_assert_eq!(Snapshot::parse(&ab.to_json_string()).unwrap(), ab);
    }

    #[test]
    fn saturation_near_u64_max(base in (u64::MAX - 64)..u64::MAX, n in 1u64..64) {
        let registry = Registry::new();
        let counter = registry.counter("c");
        counter.add(base);
        for _ in 0..n {
            counter.add(u64::MAX);
        }
        prop_assert_eq!(counter.get(), u64::MAX, "counter froze at the ceiling");

        let histogram = registry.histogram("h");
        for _ in 0..n {
            histogram.record(base);
        }
        let snap = registry.snapshot();
        let hist = snap.histogram("h").unwrap();
        prop_assert_eq!(hist.count, n);
        prop_assert_eq!(hist.sum, if n == 1 { base } else { u64::MAX });
        prop_assert_eq!(hist.max, base);

        // Merging two saturated snapshots stays saturated, never wraps.
        let mut merged = snap.clone();
        merged.merge(&snap);
        prop_assert_eq!(merged.counter("c"), Some(u64::MAX));
        prop_assert_eq!(merged.histogram("h").unwrap().sum, u64::MAX);
        prop_assert_eq!(merged.histogram("h").unwrap().count, 2 * n);
    }

    #[test]
    fn concurrent_recording_loses_nothing(threads in 2usize..6, per_thread in 1u64..200) {
        let registry = Registry::new();
        // Handles created up front and shared across threads.
        let counter = registry.counter("c");
        let histogram = registry.histogram("h");
        let gauge = registry.gauge("g");
        std::thread::scope(|scope| {
            for t in 0..threads {
                let counter = counter.clone();
                let histogram = histogram.clone();
                let gauge = gauge.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.incr();
                        histogram.record(i + t as u64);
                        gauge.record_max(i + 1);
                    }
                });
            }
        });
        let expected = threads as u64 * per_thread;
        prop_assert_eq!(counter.get(), expected);
        let snap = registry.snapshot();
        let hist = snap.histogram("h").unwrap();
        prop_assert_eq!(hist.count, expected);
        let bucket_total: u64 = hist.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, expected, "every sample landed in a bucket");
        prop_assert_eq!(snap.gauge("g"), Some(per_thread));
    }

    #[test]
    fn bucket_indices_stay_in_range(samples in proptest::collection::vec(any::<u64>(), 1..64)) {
        let registry = Registry::new();
        let histogram = registry.histogram("h");
        for &v in &samples {
            histogram.record(v);
        }
        let snap = registry.snapshot();
        let hist = snap.histogram("h").unwrap();
        prop_assert_eq!(hist.count, samples.len() as u64);
        prop_assert_eq!(hist.max, samples.iter().copied().max().unwrap());
        for &(index, _) in &hist.buckets {
            prop_assert!((index as usize) < BUCKETS);
        }
        // Quantiles are monotone in q and bounded by the bucketed max.
        let (p50, p95, p100) = (hist.quantile(0.5), hist.quantile(0.95), hist.quantile(1.0));
        prop_assert!(p50 <= p95 && p95 <= p100);
        prop_assert!(hist.max <= p100 || p100 == u64::MAX);
    }
}

#[test]
fn merge_with_empty_is_identity() {
    let snap = snapshot_of(&[(0, 5), (1, 7)], &[(0, 100), (2, 3)]);
    let mut merged = snap.clone();
    merged.merge(&Snapshot::default());
    assert_eq!(merged, snap);
    let mut from_empty = Snapshot::default();
    from_empty.merge(&snap);
    assert_eq!(from_empty, snap);
    assert_eq!(HistogramSnapshot::default().mean(), 0);
}
