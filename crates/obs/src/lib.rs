//! Process-wide telemetry for the STMS reproduction.
//!
//! Every layer of a campaign — the job pool, the chunk pipeline, the cache
//! tiers, the serving daemon — records into one lock-cheap [`Registry`] of
//! named metrics:
//!
//! * [`Counter`] — monotone, saturating `u64` event counts;
//! * [`Gauge`] — last-value / high-water `u64` levels (queue depths,
//!   resident bytes);
//! * [`Histogram`] — fixed-bucket log2 latency distributions with no
//!   allocation on the record path;
//! * [`Span`] — RAII timers that feed a histogram with elapsed nanoseconds
//!   on drop (`obs::span("pipeline/decode_ns")`).
//!
//! Handles are `Arc`-backed clones: the registry lock is taken only at
//! registration, never on the hot path. Recording is a handful of relaxed
//! atomic operations, and the whole registry can be switched off
//! ([`set_enabled`]) which turns every record — including the
//! `Instant::now()` calls inside spans — into a branch on one relaxed
//! atomic load. Telemetry must never perturb figure output: it writes to
//! stderr, files, or the wire, and its overhead is benchmarked (see the
//! `telemetry_overhead` bench group).
//!
//! A [`Snapshot`] is a deterministic point-in-time copy of every metric,
//! serializable to the versioned `stms-metrics/v1` JSON document written by
//! `--metrics-out` and answered over the wire by the serve daemon's
//! `Request::Metrics`. Snapshots [`Snapshot::merge`] associatively, so
//! per-shard snapshots aggregate fleet-wide.
//!
//! # Example
//!
//! ```
//! use stms_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("store/hits");
//! hits.add(3);
//! {
//!     let _timer = registry.span("job/run_ns");
//! } // drop records the elapsed nanoseconds
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("store/hits"), Some(3));
//! assert_eq!(snap.histogram("job/run_ns").unwrap().count, 1);
//! let back = stms_obs::Snapshot::parse(&snap.to_json_string()).unwrap();
//! assert_eq!(back.counter("store/hits"), Some(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`]. Bucket 0 counts the value 0;
/// bucket `i >= 1` counts values in `[2^(i-1), 2^i)`; the last bucket
/// absorbs everything from `2^(BUCKETS-2)` up to `u64::MAX`.
pub const BUCKETS: usize = 64;

/// Schema tag stamped on every serialized snapshot; bump when the JSON
/// layout changes so stale consumers fail closed instead of misreading.
pub const SNAPSHOT_SCHEMA: &str = "stms-metrics/v1";

/// The log2 bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Saturating add on a shared cell: counters freeze at `u64::MAX` instead
/// of wrapping (the discipline every campaign counter already follows).
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// A monotone event counter. Cheap to clone; all clones share one cell.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`. A no-op while the registry is
    /// disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            saturating_fetch_add(&self.cell, n);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A level metric: last value set, plus `record_max` for high-water marks.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. A no-op while the registry is disabled.
    pub fn set(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher (high-water mark).
    pub fn record_max(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared cells of one histogram (count, sum, max, fixed log2 buckets).
#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-bucket log2 distribution of `u64` samples (latencies in
/// nanoseconds, sizes in bytes). Recording is four relaxed atomic
/// operations and never allocates.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Records one sample. A no-op while the registry is disabled.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        saturating_fetch_add(&self.cells.count, 1);
        saturating_fetch_add(&self.cells.sum, value);
        self.cells.max.fetch_max(value, Ordering::Relaxed);
        saturating_fetch_add(&self.cells.buckets[bucket_index(value)], 1);
    }

    /// Starts an RAII timer whose drop records the elapsed nanoseconds
    /// here. While the registry is disabled the clock is never read.
    pub fn span(&self) -> Span {
        Span {
            histogram: self.clone(),
            start: self.enabled.load(Ordering::Relaxed).then(Instant::now),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, cell) in self.cells.buckets.iter().enumerate() {
            let n = cell.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: self.cells.count.load(Ordering::Relaxed),
            sum: self.cells.sum.load(Ordering::Relaxed),
            max: self.cells.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An RAII timer: created by [`Histogram::span`] / [`Registry::span`],
/// records the elapsed wall time in nanoseconds into its histogram when
/// dropped. If the registry was disabled at creation, drop records nothing.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Discards the timer without recording (for paths that turned out not
    /// to be the measured operation, e.g. a cache miss on a hit timer).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.histogram.record(nanos);
        }
    }
}

#[derive(Debug, Default)]
struct Maps {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
}

/// A process- or test-scoped collection of named metrics. The embedded
/// mutex guards only the name→cell maps: it is taken when a handle is
/// first created for a name, never while recording.
///
/// Counters, gauges and histograms live in separate namespaces, so a
/// counter and a histogram may share a name without aliasing (snapshots
/// keep them apart too).
#[derive(Debug, Default)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    maps: Mutex<Maps>,
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            maps: Mutex::new(Maps::default()),
        }
    }

    /// Turns all recording on or off. Existing handles observe the switch
    /// immediately (they share the flag); disabled spans skip the clock
    /// read entirely.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Maps> {
        self.maps.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Cache the returned handle on hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = {
            let mut maps = self.lock();
            Arc::clone(
                maps.counters
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        };
        Counter {
            enabled: Arc::clone(&self.enabled),
            cell,
        }
    }

    /// The gauge registered under `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = {
            let mut maps = self.lock();
            Arc::clone(
                maps.gauges
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        };
        Gauge {
            enabled: Arc::clone(&self.enabled),
            cell,
        }
    }

    /// The histogram registered under `name`, creating it empty on first
    /// use. Cache the returned handle on hot paths.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cells = {
            let mut maps = self.lock();
            Arc::clone(
                maps.histograms
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCells::new())),
            )
        };
        Histogram {
            enabled: Arc::clone(&self.enabled),
            cells,
        }
    }

    /// Starts an RAII timer feeding the histogram named `name` (see
    /// [`Histogram::span`]). For repeated use, cache the histogram handle
    /// and call [`Histogram::span`] on it instead.
    pub fn span(&self, name: &str) -> Span {
        self.histogram(name).span()
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// sorted by name within each kind.
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.lock();
        Snapshot {
            counters: maps
                .counters
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(name, cells)| {
                    let histogram = Histogram {
                        enabled: Arc::clone(&self.enabled),
                        cells: Arc::clone(cells),
                    };
                    (name.clone(), histogram.snapshot())
                })
                .collect(),
        }
    }
}

/// The process-wide registry every campaign layer records into. Created
/// enabled on first use and never reset, so snapshots taken over a process
/// lifetime (a serve daemon answering `--metrics`) are monotone.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Switches the global registry's recording on or off (see
/// [`Registry::set_enabled`]).
pub fn set_enabled(enabled: bool) {
    global().set_enabled(enabled);
}

/// Whether the global registry is currently recording (see
/// [`Registry::is_enabled`]). Hot paths that would pay a clock read even
/// for discarded samples check this before timing at all.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// A counter in the global registry (see [`Registry::counter`]).
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A gauge in the global registry (see [`Registry::gauge`]).
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// A histogram in the global registry (see [`Registry::histogram`]).
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// An RAII timer feeding a histogram in the global registry (see
/// [`Registry::span`]).
pub fn span(name: &str) -> Span {
    global().span(name)
}

/// A snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Point-in-time copy of one histogram: totals plus its non-empty log2
/// buckets as `(bucket index, sample count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples (saturating).
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets, ascending by index; see [`BUCKETS`] for the
    /// bucket boundaries.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket where the cumulative sample count first
    /// reaches `q` (0.0–1.0) of the total — a conservative quantile
    /// estimate. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= threshold.max(1) {
                return bucket_upper_bound(index);
            }
        }
        self.max
    }

    /// Folds `other` into `self`: totals add saturating, max takes the
    /// larger, bucket counts add pointwise. Associative and commutative,
    /// so shard snapshots can merge in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(index, n) in &other.buckets {
            let slot = merged.entry(index).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// Inclusive upper bound of one log2 bucket (see [`BUCKETS`]).
fn bucket_upper_bound(index: u32) -> u64 {
    if index == 0 {
        0
    } else if index as usize >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A deterministic, serializable copy of a whole registry at one instant.
///
/// The JSON form ([`Snapshot::to_json_string`] / [`Snapshot::parse`]) is the
/// `stms-metrics/v1` document written by `--metrics-out`, answered over the
/// wire by `Request::Metrics`, and validated by CI — all integers, flat
/// name→value maps, same value conventions as `BENCH_streaming.json`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` distributions, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Value of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Folds `other` into `self`: counters and histogram totals add
    /// saturating, gauges keep the larger value (they are levels, not
    /// events — the merged document reports the fleet-wide high-water
    /// mark). Associative and commutative.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, value) in &other.counters {
            let slot = counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, u64> = self.gauges.drain(..).collect();
        for (name, value) in &other.gauges {
            let slot = gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (name, hist) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(hist);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// The snapshot as a JSON value under the [`SNAPSHOT_SCHEMA`] layout.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let map = |entries: &[(String, u64)]| {
            Value::Object(
                entries
                    .iter()
                    .map(|(name, value)| (name.clone(), Value::from(*value)))
                    .collect(),
            )
        };
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(name, hist)| {
                    let buckets = Value::Array(
                        hist.buckets
                            .iter()
                            .map(|&(index, n)| {
                                Value::Array(vec![Value::from(index as u64), Value::from(n)])
                            })
                            .collect(),
                    );
                    (
                        name.clone(),
                        Value::Object(vec![
                            ("count".to_string(), Value::from(hist.count)),
                            ("sum".to_string(), Value::from(hist.sum)),
                            ("max".to_string(), Value::from(hist.max)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("schema".to_string(), Value::from(SNAPSHOT_SCHEMA)),
            ("counters".to_string(), map(&self.counters)),
            ("gauges".to_string(), map(&self.gauges)),
            ("histograms".to_string(), histograms),
        ])
    }

    /// The snapshot as a pretty-printed `stms-metrics/v1` JSON document
    /// with a trailing newline (the exact bytes `--metrics-out` writes).
    pub fn to_json_string(&self) -> String {
        let mut out = serde_json::to_string_pretty(&self.to_json());
        out.push('\n');
        out
    }

    /// Parses a JSON document produced by [`Snapshot::to_json_string`] (or
    /// any value with the same layout).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field, including a
    /// schema tag other than [`SNAPSHOT_SCHEMA`].
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("bad metrics JSON: {e}"))?;
        Snapshot::from_json(&value)
    }

    /// Extracts a snapshot from an already-parsed JSON value (see
    /// [`Snapshot::parse`]).
    ///
    /// # Errors
    ///
    /// Same as [`Snapshot::parse`].
    pub fn from_json(value: &serde_json::Value) -> Result<Snapshot, String> {
        let schema = value
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("metrics snapshot missing schema tag")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported metrics schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let scalar_map = |key: &str| -> Result<Vec<(String, u64)>, String> {
            let members = value
                .get(key)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("metrics snapshot missing {key:?} object"))?;
            members
                .iter()
                .map(|(name, v)| {
                    let n = v
                        .as_u64()
                        .ok_or_else(|| format!("{key}/{name} is not an unsigned integer"))?;
                    Ok((name.clone(), n))
                })
                .collect()
        };
        let mut counters = scalar_map("counters")?;
        let mut gauges = scalar_map("gauges")?;
        let members = value
            .get("histograms")
            .and_then(|v| v.as_object())
            .ok_or("metrics snapshot missing \"histograms\" object")?;
        let mut histograms = members
            .iter()
            .map(|(name, v)| {
                let field = |key: &str| {
                    v.get(key)
                        .and_then(|f| f.as_u64())
                        .ok_or_else(|| format!("histogram {name}/{key} is not an unsigned integer"))
                };
                let bucket_items = v
                    .get("buckets")
                    .and_then(|b| b.as_array())
                    .ok_or_else(|| format!("histogram {name} missing buckets array"))?;
                let buckets = bucket_items
                    .iter()
                    .map(|pair| {
                        let index = pair.index(0).and_then(|i| i.as_u64());
                        let n = pair.index(1).and_then(|c| c.as_u64());
                        match (index, n) {
                            (Some(index), Some(n)) if index < BUCKETS as u64 => {
                                Ok((index as u32, n))
                            }
                            _ => Err(format!("histogram {name} has a malformed bucket pair")),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                        buckets,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Compact `(label, value)` lines for the stderr `telemetry:` block of
    /// a run summary: every counter and gauge verbatim, every histogram as
    /// `count / mean / p95 / max` nanosecond columns.
    pub fn render_lines(&self) -> Vec<(String, String)> {
        let mut lines = Vec::new();
        for (name, value) in &self.counters {
            lines.push((name.clone(), value.to_string()));
        }
        for (name, value) in &self.gauges {
            lines.push((name.clone(), value.to_string()));
        }
        for (name, hist) in &self.histograms {
            lines.push((
                name.clone(),
                format!(
                    "n={} mean={} p95={} max={}",
                    hist.count,
                    format_ns(hist.mean()),
                    format_ns(hist.quantile(0.95)),
                    format_ns(hist.max),
                ),
            ));
        }
        lines
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

/// Renders a nanosecond quantity with a human-scale unit (`ns`, `us`,
/// `ms`, `s`), keeping summaries readable across six orders of magnitude.
pub fn format_ns(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's upper bound lands back in that bucket (or below
        // for the saturated last bucket).
        for index in 0..BUCKETS as u32 {
            let upper = bucket_upper_bound(index);
            assert!(bucket_index(upper) as u32 >= index.min(BUCKETS as u32 - 1) || upper == 0);
        }
    }

    #[test]
    fn counters_and_gauges_record() {
        let registry = Registry::new();
        let c = registry.counter("c");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Clones share the cell; re-lookup by name shares it too.
        registry.counter("c").add(1);
        assert_eq!(c.get(), 6);

        let g = registry.gauge("g");
        g.set(9);
        g.record_max(3);
        assert_eq!(g.get(), 9);
        g.record_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn disabled_registry_records_nothing_and_spans_skip_the_clock() {
        let registry = Registry::new();
        let c = registry.counter("c");
        let h = registry.histogram("h");
        registry.set_enabled(false);
        c.add(10);
        h.record(10);
        drop(h.span());
        registry.gauge("g").set(7);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.gauge("g"), Some(0));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
        // Re-enabling resumes recording on the same handles.
        registry.set_enabled(true);
        c.add(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn spans_record_elapsed_nanos_and_cancel_discards() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 1_000_000, "at least the slept millisecond");
        h.span().cancel();
        assert_eq!(h.snapshot().count, 1, "cancelled span records nothing");
    }

    #[test]
    fn histogram_saturates_instead_of_wrapping() {
        let registry = Registry::new();
        let h = registry.histogram("big");
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, u64::MAX, "sum saturates");
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets, vec![(BUCKETS as u32 - 1, 2)]);
    }

    #[test]
    fn quantiles_are_conservative_bucket_bounds() {
        let registry = Registry::new();
        let h = registry.histogram("q");
        for v in [1u64, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.mean(), (1 + 2 + 3 + 4 + 1000) / 5);
        assert!(snap.quantile(0.5) >= 3, "median upper bound covers 3");
        assert_eq!(snap.quantile(1.0), 1023, "p100 lands in 1000's bucket");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let registry = Registry::new();
        registry.counter("a/hits").add(3);
        registry.gauge("a/depth").set(2);
        registry.histogram("a/lat_ns").record(700);
        let snap = registry.snapshot();
        let text = snap.to_json_string();
        assert!(text.contains("stms-metrics/v1"));
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Snapshot::parse("not json").is_err());
        assert!(Snapshot::parse("{}").unwrap_err().contains("schema"));
        let wrong = r#"{"schema":"stms-metrics/v999","counters":{},"gauges":{},"histograms":{}}"#;
        assert!(Snapshot::parse(wrong).unwrap_err().contains("v999"));
        let bad_counter =
            r#"{"schema":"stms-metrics/v1","counters":{"c":-1},"gauges":{},"histograms":{}}"#;
        assert!(Snapshot::parse(bad_counter).is_err());
        let bad_bucket = r#"{"schema":"stms-metrics/v1","counters":{},"gauges":{},
            "histograms":{"h":{"count":1,"sum":1,"max":1,"buckets":[[99]]}}}"#;
        assert!(Snapshot::parse(bad_bucket).is_err());
    }

    #[test]
    fn render_lines_cover_every_metric() {
        let registry = Registry::new();
        registry.counter("hits").add(3);
        registry.gauge("depth").set(2);
        registry.histogram("lat").record(1_500);
        let lines = registry.snapshot().render_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().any(|(k, v)| k == "hits" && v == "3"));
        assert!(lines
            .iter()
            .any(|(k, v)| k == "lat" && v.contains("n=1") && v.contains("us")));
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn global_registry_is_shared_and_monotone() {
        // Scoped names: the global registry is shared with every other
        // test in this binary.
        let c = counter("obs-test/global");
        let before = c.get();
        span("obs-test/span_ns");
        counter("obs-test/global").incr();
        assert_eq!(c.get(), before + 1);
        assert!(snapshot().histogram("obs-test/span_ns").unwrap().count >= 1);
    }
}
