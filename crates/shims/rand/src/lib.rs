//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! The workspace builds without network access, so this vendored shim
//! provides the only surface the simulator uses: `rand::Rng::gen_range` over
//! integer and float ranges, `rand::rngs::StdRng`, and
//! `rand::SeedableRng::seed_from_u64`. The generator is SplitMix64 — fast,
//! full-period for 2^64 seeds, and *deterministic*: every workload trace is a
//! pure function of its seed, which the reproduction's matched experiments
//! and property tests rely on.

/// A source of uniformly-distributed random values.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly random value from `range`.
    ///
    /// Mirrors `rand 0.8`'s `Rng::gen_range`: accepts half-open (`lo..hi`)
    /// and inclusive (`lo..=hi`) ranges over the primitive integer types and
    /// floats.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can produce a uniformly random value of type `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire-style widening multiply avoids the worst of modulo bias while
    // staying branch-light; exact uniformity is not required by the
    // simulator, determinism is.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = unit_f64(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&y));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let n: usize = rng.gen_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn unsized_rng_receiver_compiles() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 100);
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0u64..u64::MAX / 2);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
