//! Offline stand-in for the `bytes` crate, covering exactly the subset the
//! binary trace codec in `stms-types` uses: big-endian `get_*`/`put_*`
//! accessors, `BytesMut::with_capacity` + `freeze`, and `Buf for &[u8]`.
//! Byte order matches the real crate (network order) so encoded traces stay
//! compatible if the shim is swapped for the registry crate.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a buffer of bytes, consumed from the front.
pub trait Buf {
    /// Number of bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies bytes from the front of the buffer into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

/// A growable byte buffer, frozen into an immutable [`Bytes`] once built.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the buffer into immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.vec.into_boxed_slice()),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new().into_boxed_slice()),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec().into_boxed_slice()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(vec.into_boxed_slice()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let bytes = buf.freeze();
        let mut view: &[u8] = &bytes;
        assert_eq!(view.get_u8(), 0xAB);
        assert_eq!(view.get_u16(), 0x1234);
        assert_eq!(view.get_u32(), 0xDEAD_BEEF);
        assert_eq!(view.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(view.remaining(), 3);
        view.advance(1);
        assert_eq!(view, b"yz");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut view: &[u8] = b"ab";
        view.advance(3);
    }
}
