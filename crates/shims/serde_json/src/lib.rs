//! Offline stand-in for the real `serde_json` crate.
//!
//! The workspace builds without network access, so the registry version is
//! unavailable. The experiment pipeline only needs the *self-describing*
//! subset of serde_json — build a [`Value`], serialize it, parse it back —
//! not the generic `Serialize`/`Deserialize` bridge, so this shim provides:
//!
//! * [`Value`] with the six JSON kinds and the usual accessors
//!   (`get`, `as_str`, `as_f64`, `as_u64`, `as_array`, `as_object`, …);
//! * [`to_string`] / [`to_string_pretty`] emitting strict RFC 8259 output
//!   (escaped strings, no trailing commas, `null` for non-finite numbers);
//! * [`from_str`] — a strict recursive-descent parser rejecting trailing
//!   garbage, unterminated strings, bad escapes and over-deep nesting.
//!
//! Object member order is preserved (insertion order), matching what the
//! real crate does with its `preserve_order` feature. Swap the real crate
//! back in via `[workspace.dependencies]` once a registry is reachable;
//! `Value`-based call sites keep working unchanged.
//!
//! # Example
//!
//! ```
//! use serde_json::{from_str, to_string, Value};
//!
//! let v = Value::Array(vec![Value::from("hi"), Value::from(2.5), Value::Null]);
//! let text = to_string(&v);
//! assert_eq!(text, r#"["hi",2.5,null]"#);
//! assert_eq!(from_str(&text).unwrap(), v);
//! ```

use std::fmt;

/// Maximum accepted nesting depth when parsing (arrays/objects).
const MAX_DEPTH: usize = 128;

/// A parsed or to-be-serialized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// numbers would coerce for the value sizes this workspace emits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; member order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the real crate errors on them when they
        // sneak in as raw f64s. Emitting null keeps the output parseable.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serializes a value to pretty (2-space indented) JSON.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

/// Error produced by [`from_str`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    what: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            what: what.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired escape.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return self.err("unpaired surrogate");
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return self.err("unpaired surrogate");
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        other => return self.err(format!("invalid escape `\\{}`", other as char)),
                    }
                }
                b if b < 0x20 => return self.err("raw control character in string"),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid utf-8"),
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + len;
                        }
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos += 4;
                Ok(v)
            }
            None => self.err("invalid unicode escape"),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return self.err("expected exponent digits");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err("number out of range"),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error`] on any syntax violation, including trailing non-space
/// bytes after the top-level value.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: &[(&str, Value)]) -> Value {
        Value::Object(
            members
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn serializes_every_kind() {
        let v = obj(&[
            ("null", Value::Null),
            ("flag", Value::Bool(true)),
            ("int", Value::from(42u64)),
            ("float", Value::from(2.5)),
            ("text", Value::from("a\"b\\c\n")),
            ("list", Value::from(vec![1u64, 2])),
            ("empty_list", Value::Array(vec![])),
            ("empty_obj", Value::Object(vec![])),
        ]);
        let s = to_string(&v);
        assert_eq!(
            s,
            r#"{"null":null,"flag":true,"int":42,"float":2.5,"text":"a\"b\\c\n","list":[1,2],"empty_list":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = obj(&[
            ("id", Value::from("fig4")),
            ("rows", Value::Array(vec![Value::from(vec!["a", "b"])])),
            ("nested", obj(&[("x", Value::from(1.25))])),
        ]);
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\u00e9\u2603 \ud83d\ude00 b\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé☃ 😀 b\t");
        // Serializer keeps non-ASCII as raw UTF-8, which must re-parse.
        let round = from_str(&to_string(&v)).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn parses_numbers() {
        for (text, expect) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.5", 3.5),
            ("1e3", 1000.0),
            ("2.5E-1", 0.25),
        ] {
            assert_eq!(from_str(text).unwrap().as_f64().unwrap(), expect, "{text}");
        }
        assert_eq!(from_str("7").unwrap().as_u64(), Some(7));
        assert_eq!(from_str("7.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1 2",
            "nul",
            "[1] x",
            "\"\\q\"",
            "\"\\ud800\"",
            "01x",
            "-",
            "1.",
            "1e",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_structures() {
        let v = from_str(r#"{"a":[1,{"b":"c"}],"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().index(0).unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("a")
                .unwrap()
                .index(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.is_null());
        assert!(v.as_object().is_some());
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }
}
