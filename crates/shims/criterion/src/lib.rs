//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) backed
//! by a simple wall-clock harness: each benchmark runs one warm-up iteration
//! plus a small fixed number of timed iterations and prints the mean time per
//! iteration (and throughput when declared). No statistical analysis, HTML
//! reports, or baselines — enough to track costs and keep bench targets
//! compiling and runnable offline.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Declared work-per-iteration, used to print derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name` with `parameter` appended, e.g. `hash_update_lookup/1024`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            full: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting `target_samples` measurements after one
    /// warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn report(group: &str, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per_iter = format_duration(mean);
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<50} {per_iter:>12}/iter   {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            println!("{label:<50} {per_iter:>12}/iter   {rate:>14.1} MiB/s");
        }
        _ => println!("{label:<50} {per_iter:>12}/iter"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Benchmark harness entry point (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// How many timed iterations a declared `sample_size` maps to. The real
/// criterion runs full statistical sampling; this harness caps the count so
/// `cargo bench` completes in seconds.
fn timed_iters(sample_size: usize) -> usize {
    sample_size.clamp(1, 10)
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: timed_iters(10),
        };
        f(&mut bencher);
        report("", &id.full, bencher.mean(), None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the intended sample count (capped by this harness).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares work-per-iteration for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: timed_iters(self.sample_size),
        };
        f(&mut bencher);
        report(&self.name, &id.full, bencher.mean(), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: timed_iters(self.sample_size),
        };
        f(&mut bencher, input);
        report(&self.name, &id.full, bencher.mean(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3).throughput(Throughput::Elements(10));
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warm-up + min(3, 10) timed iterations.
        assert_eq!(runs, 4);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function(BenchmarkId::new("param", 42), |b| b.iter(|| black_box(2)));
    }
}
