//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this vendored shim
//! re-implements the subset of proptest the test suites use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], `ProptestConfig { cases, .. }`, and the
//! [`proptest!`] macro. Unlike real proptest there is **no shrinking** and
//! **no failure persistence** — each property runs a fixed number of cases
//! drawn from a generator seeded deterministically from the test's name, so
//! failures reproduce exactly across runs and machines.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// The random source handed to strategies (deterministic per test).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs, platforms, rustc.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Run-time options for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample_value(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`-style call sites).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length distribution for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(
                rng,
                self.size.lo..self.size.hi_exclusive.max(self.size.lo + 1),
            );
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (plain `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests.
///
/// Matches the real proptest surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u64..10, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                let run = move || $body;
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "property {} failed on case {}/{} (deterministic seed; re-run reproduces it)",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair {
        a: u64,
        b: f64,
    }

    fn arb_pair() -> impl Strategy<Value = Pair> {
        (0u64..100, 0.0f64..1.0).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(x in 1u64..10, v in collection::vec(0u64..5, 2..6), s in any::<u64>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = s;
        }

        #[test]
        fn mapped_strategies(p in arb_pair()) {
            prop_assert!(p.a < 100);
            prop_assert!((0.0..1.0).contains(&p.b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..20 {
            assert_eq!(s.sample_value(&mut a), s.sample_value(&mut b));
        }
    }
}
