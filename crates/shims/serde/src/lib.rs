//! Offline stand-in for the real `serde` crate (see `serde_derive` shim for
//! the rationale). Only the derive-macro surface is provided; nothing in the
//! workspace performs serde-based (de)serialization at runtime.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
