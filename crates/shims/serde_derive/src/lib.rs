//! Offline stand-in for the real `serde_derive` crate.
//!
//! The workspace builds without network access, so the registry versions of
//! serde are unavailable. The simulator only ever uses `#[derive(Serialize,
//! Deserialize)]` as forward-looking annotations (no code path serializes
//! through serde yet — the binary trace codec is hand-rolled), so the derives
//! expand to nothing. Swap this shim for the real crates by editing
//! `[workspace.dependencies]` once a registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
