//! Temporal-streaming prefetcher framework and prior-work baselines.
//!
//! This crate contains every address-correlating prefetcher the paper
//! discusses *except* STMS itself (which lives in `stms-core`):
//!
//! * [`IdealTms`] — the idealized temporal memory streaming prefetcher with
//!   "magic" on-chip meta-data (§5.2), optionally with a bounded LRU index
//!   for the correlation-table-entries sweep of Figure 1 (left);
//! * [`MarkovPrefetcher`] — the pair-wise correlating baseline (§2);
//! * [`FixedDepthPrefetcher`] — single-table designs with a fixed prefetch
//!   depth, on-chip or off-chip (EBCP-like / ULMT-like), used for Figure 1
//!   (right) and the prefetch-depth sweep of Figure 6 (right);
//! * [`MissTraceCollector`] — a pseudo-prefetcher that captures the baseline
//!   off-chip miss sequence for offline analyses;
//! * shared building blocks: [`HistoryLog`] and [`LruIndex`].
//!
//! All prefetchers implement [`stms_mem::Prefetcher`] and plug into the
//! simulation engine of `stms-mem`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collector;
pub mod fixed_depth;
pub mod history;
pub mod ideal;
pub mod lru_index;
pub mod markov;

pub use collector::MissTraceCollector;
pub use fixed_depth::{FixedDepthConfig, FixedDepthPrefetcher, FixedDepthStats, TablePlacement};
pub use history::HistoryLog;
pub use ideal::{IdealTms, IdealTmsConfig, IdealTmsStats};
pub use lru_index::LruIndex;
pub use markov::{MarkovConfig, MarkovPrefetcher};
