//! The Markov prefetcher of Joseph and Grunwald (pair-wise address
//! correlation), the simplest baseline discussed in §2.
//!
//! The hardware is a set-associative correlation table mapping a miss address
//! to a few recently-observed successor addresses. Each prediction covers at
//! most `ways_successors` misses, so memory-level parallelism and lookahead
//! are limited — the key shortcoming that temporal streaming addresses.

use stms_mem::{DramModel, Prefetcher, StreamChunk};
use stms_types::{CoreId, Cycle, LineAddr};

/// Configuration of the Markov prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovConfig {
    /// Number of cores (for per-core last-miss tracking).
    pub cores: usize,
    /// Total number of correlation-table entries.
    pub entries: usize,
    /// Table associativity.
    pub associativity: usize,
    /// Successors stored (and prefetched) per entry.
    pub successors: usize,
}

// Stable fingerprint so Markov design points can key on-disk memoized
// results.
impl stms_types::Fingerprintable for MarkovConfig {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let MarkovConfig {
            cores,
            entries,
            associativity,
            successors,
        } = self;
        fp.write_str("MarkovConfig/v1");
        fp.write_usize(*cores);
        fp.write_usize(*entries);
        fp.write_usize(*associativity);
        fp.write_usize(*successors);
    }
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            cores: 4,
            entries: 64 * 1024,
            associativity: 8,
            successors: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tag: LineAddr,
    successors: Vec<LineAddr>,
    lru: u64,
    valid: bool,
}

/// The pair-wise correlating (Markov) prefetcher.
///
/// # Example
///
/// ```
/// use stms_prefetch::{MarkovConfig, MarkovPrefetcher};
/// use stms_mem::{DramModel, Prefetcher, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut markov = MarkovPrefetcher::new(MarkovConfig { cores: 1, ..Default::default() });
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let core = CoreId::new(0);
/// for l in [1u64, 2, 1, 2] {
///     markov.record(core, LineAddr::new(l), false, Cycle::ZERO, &mut dram);
/// }
/// let chunk = markov.on_trigger(core, LineAddr::new(1), Cycle::ZERO, &mut dram).unwrap();
/// assert_eq!(chunk.addresses, vec![LineAddr::new(2)]);
/// ```
#[derive(Debug)]
pub struct MarkovPrefetcher {
    cfg: MarkovConfig,
    sets: Vec<Vec<Entry>>,
    last_miss: Vec<Option<LineAddr>>,
    clock: u64,
}

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `associativity` or the
    /// resulting set count is not a power of two.
    pub fn new(cfg: MarkovConfig) -> Self {
        assert!(cfg.associativity > 0 && cfg.entries.is_multiple_of(cfg.associativity));
        let sets = cfg.entries / cfg.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        MarkovPrefetcher {
            cfg,
            sets: vec![Vec::new(); sets],
            last_miss: vec![None; cfg.cores],
            clock: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    fn learn(&mut self, predecessor: LineAddr, successor: LineAddr) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let max_succ = self.cfg.successors;
        let set_idx = self.set_of(predecessor);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|e| e.valid && e.tag == predecessor) {
            entry.lru = clock;
            // Most-recent successor first; keep the list deduplicated.
            entry.successors.retain(|&s| s != successor);
            entry.successors.insert(0, successor);
            entry.successors.truncate(max_succ);
            return;
        }
        let new_entry = Entry {
            tag: predecessor,
            successors: vec![successor],
            lru: clock,
            valid: true,
        };
        if set.len() < assoc {
            set.push(new_entry);
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("associativity > 0");
            *victim = new_entry;
        }
    }

    fn predict(&mut self, line: LineAddr) -> Vec<LineAddr> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(line);
        match self.sets[set_idx]
            .iter_mut()
            .find(|e| e.valid && e.tag == line)
        {
            Some(entry) => {
                entry.lru = clock;
                entry.successors.clone()
            }
            None => Vec::new(),
        }
    }

    /// Number of valid correlation entries currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.valid).count())
            .sum()
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn on_trigger(
        &mut self,
        _core: CoreId,
        line: LineAddr,
        now: Cycle,
        _dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        let addresses = self.predict(line);
        if addresses.is_empty() {
            None
        } else {
            Some(StreamChunk {
                addresses,
                ready_at: now,
            })
        }
    }

    fn next_chunk(&mut self, _core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
        // Pair-wise correlation predicts only immediate successors; there is
        // never a second chunk.
        StreamChunk::empty(now)
    }

    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        _prefetched: bool,
        _now: Cycle,
        _dram: &mut DramModel,
    ) {
        if let Some(prev) = self.last_miss[core.index()] {
            if prev != line {
                self.learn(prev, line);
            }
        }
        self.last_miss[core.index()] = Some(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn small() -> MarkovPrefetcher {
        MarkovPrefetcher::new(MarkovConfig {
            cores: 2,
            entries: 16,
            associativity: 2,
            successors: 2,
        })
    }

    fn record_seq(p: &mut MarkovPrefetcher, core: u16, lines: &[u64]) {
        let mut d = dram();
        for &l in lines {
            p.record(
                CoreId::new(core),
                LineAddr::new(l),
                false,
                Cycle::ZERO,
                &mut d,
            );
        }
    }

    #[test]
    fn learns_pairwise_successor() {
        let mut p = small();
        record_seq(&mut p, 0, &[10, 20, 30]);
        let mut d = dram();
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(10), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(20)]);
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(20), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(30)]);
        assert!(p
            .on_trigger(CoreId::new(0), LineAddr::new(30), Cycle::ZERO, &mut d)
            .is_none());
        assert!(p.next_chunk(CoreId::new(0), Cycle::ZERO, &mut d).is_empty());
    }

    #[test]
    fn multiple_successors_most_recent_first() {
        let mut p = small();
        record_seq(&mut p, 0, &[1, 2, 1, 3]);
        let mut d = dram();
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(3), LineAddr::new(2)]);
    }

    #[test]
    fn successor_list_is_bounded_and_deduplicated() {
        let mut p = small();
        record_seq(&mut p, 0, &[1, 2, 1, 3, 1, 4, 1, 2]);
        let mut d = dram();
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses.len(), 2, "bounded to `successors`");
        assert_eq!(c.addresses[0], LineAddr::new(2), "most recent first");
    }

    #[test]
    fn per_core_training_is_separate() {
        let mut p = small();
        // Interleave two cores; correlations must not cross cores.
        let mut d = dram();
        for (core, line) in [(0u16, 1u64), (1, 100), (0, 2), (1, 200)] {
            p.record(
                CoreId::new(core),
                LineAddr::new(line),
                false,
                Cycle::ZERO,
                &mut d,
            );
        }
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(2)]);
        let c = p
            .on_trigger(CoreId::new(1), LineAddr::new(100), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(200)]);
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = small();
        record_seq(&mut p, 0, &(0..1000u64).collect::<Vec<_>>());
        assert!(p.occupancy() <= 16);
    }

    #[test]
    fn no_metadata_traffic_for_on_chip_table() {
        let mut p = small();
        let mut d = dram();
        p.record(CoreId::new(0), LineAddr::new(1), false, Cycle::ZERO, &mut d);
        p.record(CoreId::new(0), LineAddr::new(2), false, Cycle::ZERO, &mut d);
        let _ = p.on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d);
        assert_eq!(d.traffic().total(), 0);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = MarkovPrefetcher::new(MarkovConfig {
            cores: 1,
            entries: 10,
            associativity: 3,
            successors: 1,
        });
    }
}
