//! A pseudo-prefetcher that records the off-chip read-miss sequence of the
//! baseline system.
//!
//! Several analyses need the raw miss stream rather than aggregate counters:
//! the temporal-stream length CDF of Figure 6 (left), the
//! correlation-table-entries sweep of Figure 1 (left) and the MLP analysis of
//! Table 2 all start from it. Running the simulation engine with a
//! [`MissTraceCollector`] yields exactly the miss addresses that a temporal
//! prefetcher would observe, in order, per core.

use stms_mem::{DramModel, Prefetcher, StreamChunk};
use stms_types::{CoreId, Cycle, LineAddr};

/// Records every off-chip demand read miss without prefetching anything.
///
/// # Example
///
/// ```
/// use stms_prefetch::MissTraceCollector;
/// use stms_mem::{DramModel, Prefetcher, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut collector = MissTraceCollector::new(2);
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// collector.record(CoreId::new(0), LineAddr::new(7), false, Cycle::ZERO, &mut dram);
/// collector.record(CoreId::new(1), LineAddr::new(9), false, Cycle::ZERO, &mut dram);
/// assert_eq!(collector.misses().len(), 2);
/// assert_eq!(collector.per_core(CoreId::new(1)), vec![LineAddr::new(9)]);
/// ```
#[derive(Debug, Clone)]
pub struct MissTraceCollector {
    cores: usize,
    misses: Vec<(CoreId, LineAddr)>,
}

impl MissTraceCollector {
    /// Creates a collector for a system with `cores` cores.
    pub fn new(cores: usize) -> Self {
        MissTraceCollector {
            cores,
            misses: Vec::new(),
        }
    }

    /// All recorded off-chip read misses in global order.
    pub fn misses(&self) -> &[(CoreId, LineAddr)] {
        &self.misses
    }

    /// The miss sequence of one core.
    pub fn per_core(&self, core: CoreId) -> Vec<LineAddr> {
        self.misses
            .iter()
            .filter(|(c, _)| *c == core)
            .map(|&(_, l)| l)
            .collect()
    }

    /// The miss sequences of every core, indexed by core id.
    pub fn all_cores(&self) -> Vec<Vec<LineAddr>> {
        (0..self.cores)
            .map(|c| self.per_core(CoreId::new(c as u16)))
            .collect()
    }

    /// Consumes the collector, returning the global miss sequence.
    pub fn into_misses(self) -> Vec<(CoreId, LineAddr)> {
        self.misses
    }
}

impl Prefetcher for MissTraceCollector {
    fn name(&self) -> &'static str {
        "miss-collector"
    }

    fn on_trigger(
        &mut self,
        _core: CoreId,
        _line: LineAddr,
        _now: Cycle,
        _dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        None
    }

    fn next_chunk(&mut self, _core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
        StreamChunk::empty(now)
    }

    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        prefetched: bool,
        _now: Cycle,
        _dram: &mut DramModel,
    ) {
        debug_assert!(
            !prefetched,
            "a collector never prefetches, so hits cannot be prefetched"
        );
        self.misses.push((core, line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    #[test]
    fn collects_in_order_and_per_core() {
        let mut c = MissTraceCollector::new(2);
        let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
        for (core, line) in [(0u16, 1u64), (1, 2), (0, 3), (1, 4)] {
            c.record(
                CoreId::new(core),
                LineAddr::new(line),
                false,
                Cycle::ZERO,
                &mut dram,
            );
        }
        assert_eq!(c.misses().len(), 4);
        assert_eq!(
            c.per_core(CoreId::new(0)),
            vec![LineAddr::new(1), LineAddr::new(3)]
        );
        assert_eq!(c.all_cores().len(), 2);
        assert_eq!(c.all_cores()[1], vec![LineAddr::new(2), LineAddr::new(4)]);
        assert_eq!(c.clone().into_misses().len(), 4);
        assert_eq!(c.name(), "miss-collector");
    }

    #[test]
    fn never_returns_streams() {
        let mut c = MissTraceCollector::new(1);
        let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
        assert!(c
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut dram)
            .is_none());
        assert!(c
            .next_chunk(CoreId::new(0), Cycle::ZERO, &mut dram)
            .is_empty());
        assert_eq!(dram.traffic().total(), 0);
    }
}
