//! A bounded LRU map from miss addresses to history-buffer positions.
//!
//! This models an idealized on-chip *index table* with a bounded number of
//! entries and true least-recently-used replacement. It backs the
//! correlation-table-entries sweep of Figure 1 (left) and the idealized TMS
//! prefetcher.

use std::collections::{HashMap, VecDeque};
use stms_types::LineAddr;

/// A bounded LRU map `LineAddr -> u64` with amortized O(1) operations.
///
/// Recency is tracked lazily: every touch pushes a `(line, tick)` pair onto a
/// queue, and eviction pops stale pairs until it finds one that still matches
/// the map.
///
/// # Example
///
/// ```
/// use stms_prefetch::LruIndex;
/// use stms_types::LineAddr;
///
/// let mut idx = LruIndex::new(2);
/// idx.insert(LineAddr::new(1), 100);
/// idx.insert(LineAddr::new(2), 200);
/// idx.get(LineAddr::new(1)); // touch 1 so 2 becomes LRU
/// idx.insert(LineAddr::new(3), 300);
/// assert_eq!(idx.get(LineAddr::new(2)), None);
/// assert_eq!(idx.get(LineAddr::new(1)), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct LruIndex {
    capacity: usize,
    map: HashMap<LineAddr, (u64, u64)>, // value, last-touch tick
    recency: VecDeque<(LineAddr, u64)>,
    tick: u64,
}

impl LruIndex {
    /// Creates an index holding at most `capacity` entries. A capacity of
    /// zero creates an index that never stores anything.
    pub fn new(capacity: usize) -> Self {
        LruIndex {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            recency: VecDeque::new(),
            tick: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&line) {
            entry.1 = tick;
            self.recency.push_back((line, tick));
        }
        self.compact();
    }

    /// Looks up `line`, refreshing its recency.
    pub fn get(&mut self, line: LineAddr) -> Option<u64> {
        let value = self.map.get(&line).map(|&(v, _)| v)?;
        self.touch(line);
        Some(value)
    }

    /// Looks up `line` without refreshing recency.
    pub fn peek(&self, line: LineAddr) -> Option<u64> {
        self.map.get(&line).map(|&(v, _)| v)
    }

    /// Inserts or updates `line -> value`, evicting the least recently used
    /// entry if the index is full. Returns the evicted line, if any.
    pub fn insert(&mut self, line: LineAddr, value: u64) -> Option<LineAddr> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let existed = self.map.insert(line, (value, tick)).is_some();
        self.recency.push_back((line, tick));
        if existed || self.map.len() <= self.capacity {
            self.compact();
            return None;
        }
        // Evict the least recently used entry: pop stale recency records
        // until one matches the map's current tick for that line.
        while let Some((old_line, old_tick)) = self.recency.pop_front() {
            match self.map.get(&old_line) {
                Some(&(_, current_tick)) if current_tick == old_tick => {
                    self.map.remove(&old_line);
                    return Some(old_line);
                }
                _ => continue,
            }
        }
        None
    }

    /// Drops stale recency records if the queue grows far beyond the map
    /// (keeps memory bounded under heavy re-touching). Runs in time linear in
    /// the queue length but only once the queue has grown several times
    /// larger than the map, so the amortized cost per touch is constant.
    fn compact(&mut self) {
        if self.recency.len() < self.map.len().saturating_mul(4) + 64 {
            return;
        }
        let map = &self.map;
        self.recency.retain(
            |&(line, tick)| matches!(map.get(&line), Some(&(_, current)) if current == tick),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_get() {
        let mut idx = LruIndex::new(4);
        assert!(idx.is_empty());
        assert!(idx.insert(LineAddr::new(1), 11).is_none());
        assert_eq!(idx.get(LineAddr::new(1)), Some(11));
        assert_eq!(idx.peek(LineAddr::new(1)), Some(11));
        assert_eq!(idx.get(LineAddr::new(2)), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.capacity(), 4);
    }

    #[test]
    fn update_replaces_value_without_eviction() {
        let mut idx = LruIndex::new(2);
        idx.insert(LineAddr::new(1), 10);
        idx.insert(LineAddr::new(2), 20);
        assert!(idx.insert(LineAddr::new(1), 15).is_none());
        assert_eq!(idx.get(LineAddr::new(1)), Some(15));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut idx = LruIndex::new(2);
        idx.insert(LineAddr::new(1), 10);
        idx.insert(LineAddr::new(2), 20);
        idx.get(LineAddr::new(1));
        let evicted = idx.insert(LineAddr::new(3), 30);
        assert_eq!(evicted, Some(LineAddr::new(2)));
        assert_eq!(idx.get(LineAddr::new(2)), None);
        assert_eq!(idx.get(LineAddr::new(1)), Some(10));
        assert_eq!(idx.get(LineAddr::new(3)), Some(30));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut idx = LruIndex::new(0);
        assert!(idx.insert(LineAddr::new(1), 10).is_none());
        assert_eq!(idx.get(LineAddr::new(1)), None);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn heavy_retouching_does_not_grow_unboundedly() {
        let mut idx = LruIndex::new(8);
        for i in 0..8u64 {
            idx.insert(LineAddr::new(i), i);
        }
        for _ in 0..10_000 {
            idx.get(LineAddr::new(3));
        }
        assert!(
            idx.recency.len() < 1000,
            "recency queue should be compacted"
        );
        assert_eq!(idx.len(), 8);
    }

    proptest! {
        /// The index never exceeds its capacity and always returns the most
        /// recently inserted value for a key.
        #[test]
        fn prop_capacity_respected_and_values_current(
            ops in proptest::collection::vec((0u64..50, 0u64..1000), 1..500),
            capacity in 1usize..16,
        ) {
            let mut idx = LruIndex::new(capacity);
            let mut last_value = std::collections::HashMap::new();
            for (line, value) in ops {
                idx.insert(LineAddr::new(line), value);
                last_value.insert(line, value);
                prop_assert!(idx.len() <= capacity);
            }
            // Every entry still present must hold its most recent value.
            for (&line, &value) in &last_value {
                if let Some(v) = idx.peek(LineAddr::new(line)) {
                    prop_assert_eq!(v, value);
                }
            }
        }

        /// With capacity >= number of distinct keys, nothing is ever evicted.
        #[test]
        fn prop_no_eviction_when_capacity_sufficient(
            keys in proptest::collection::vec(0u64..20, 1..200),
        ) {
            let mut idx = LruIndex::new(32);
            for (i, k) in keys.iter().enumerate() {
                prop_assert!(idx.insert(LineAddr::new(*k), i as u64).is_none());
            }
            for k in keys {
                prop_assert!(idx.peek(LineAddr::new(k)).is_some());
            }
        }
    }
}
