//! A bounded, append-only log of miss addresses ("history buffer").
//!
//! This is the in-memory data structure shared by the idealized temporal
//! streaming prefetcher and (conceptually) by the Global History Buffer
//! baseline: addresses are appended in miss order and addressed by an
//! absolute, monotonically-increasing position. Old entries beyond the
//! capacity are forgotten; reads of forgotten positions return nothing.

use stms_types::LineAddr;

/// An append-only circular log of line addresses with absolute positions.
///
/// # Example
///
/// ```
/// use stms_prefetch::HistoryLog;
/// use stms_types::LineAddr;
///
/// let mut log = HistoryLog::new(4);
/// for i in 0..6u64 {
///     log.append(LineAddr::new(i));
/// }
/// // Positions 0 and 1 have been overwritten by 4 and 5.
/// assert_eq!(log.get(0), None);
/// assert_eq!(log.get(3), Some(LineAddr::new(3)));
/// assert_eq!(log.read_from(2, 10), vec![LineAddr::new(2), LineAddr::new(3), LineAddr::new(4), LineAddr::new(5)]);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryLog {
    buf: Vec<LineAddr>,
    capacity: usize,
    /// Total number of entries ever appended; the next append gets this
    /// position.
    next_pos: u64,
}

impl HistoryLog {
    /// Creates a log holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        HistoryLog {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next_pos: 0,
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no entries have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total number of entries ever appended (the position the next append
    /// will receive).
    pub fn next_position(&self) -> u64 {
        self.next_pos
    }

    /// Oldest position still retained.
    pub fn oldest_position(&self) -> u64 {
        self.next_pos.saturating_sub(self.buf.len() as u64)
    }

    /// Appends an address and returns its absolute position.
    pub fn append(&mut self, line: LineAddr) -> u64 {
        let pos = self.next_pos;
        if self.buf.len() < self.capacity {
            self.buf.push(line);
        } else {
            let idx = (pos % self.capacity as u64) as usize;
            self.buf[idx] = line;
        }
        self.next_pos += 1;
        pos
    }

    /// Returns the address at an absolute position, if still retained.
    pub fn get(&self, pos: u64) -> Option<LineAddr> {
        if pos >= self.next_pos || pos < self.oldest_position() {
            return None;
        }
        let idx = (pos % self.capacity as u64) as usize;
        Some(self.buf[idx])
    }

    /// Reads up to `n` consecutive entries starting at `pos`, stopping at the
    /// end of the log or at the retention horizon.
    pub fn read_from(&self, pos: u64, n: usize) -> Vec<LineAddr> {
        let mut out = Vec::with_capacity(n.min(64));
        for p in pos..pos.saturating_add(n as u64) {
            match self.get(p) {
                Some(line) => out.push(line),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn append_and_get() {
        let mut log = HistoryLog::new(8);
        assert!(log.is_empty());
        assert_eq!(log.append(LineAddr::new(10)), 0);
        assert_eq!(log.append(LineAddr::new(11)), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(0), Some(LineAddr::new(10)));
        assert_eq!(log.get(1), Some(LineAddr::new(11)));
        assert_eq!(log.get(2), None);
        assert_eq!(log.next_position(), 2);
        assert_eq!(log.oldest_position(), 0);
    }

    #[test]
    fn wrap_around_forgets_old_entries() {
        let mut log = HistoryLog::new(3);
        for i in 0..7u64 {
            log.append(LineAddr::new(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.oldest_position(), 4);
        assert_eq!(log.get(3), None);
        assert_eq!(log.get(4), Some(LineAddr::new(4)));
        assert_eq!(log.get(6), Some(LineAddr::new(6)));
    }

    #[test]
    fn read_from_stops_at_end() {
        let mut log = HistoryLog::new(10);
        for i in 0..5u64 {
            log.append(LineAddr::new(i * 2));
        }
        assert_eq!(
            log.read_from(3, 10),
            vec![LineAddr::new(6), LineAddr::new(8)]
        );
        assert!(log.read_from(99, 4).is_empty());
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(HistoryLog::new(17).capacity(), 17);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = HistoryLog::new(0);
    }

    proptest! {
        /// Retained entries always read back exactly what was appended.
        #[test]
        fn prop_retained_entries_match(
            lines in proptest::collection::vec(0u64..1_000_000, 1..300),
            capacity in 1usize..64,
        ) {
            let mut log = HistoryLog::new(capacity);
            for &l in &lines {
                log.append(LineAddr::new(l));
            }
            let oldest = log.oldest_position();
            for pos in oldest..log.next_position() {
                prop_assert_eq!(log.get(pos), Some(LineAddr::new(lines[pos as usize])));
            }
            // Nothing before the horizon or at/after the write point resolves.
            if oldest > 0 {
                prop_assert_eq!(log.get(oldest - 1), None);
            }
            prop_assert_eq!(log.get(log.next_position()), None);
            prop_assert_eq!(log.len(), capacity.min(lines.len()));
        }

        /// read_from agrees with repeated get.
        #[test]
        fn prop_read_from_matches_get(
            lines in proptest::collection::vec(0u64..1000, 1..200),
            start in 0u64..250,
            n in 0usize..50,
        ) {
            let mut log = HistoryLog::new(64);
            for &l in &lines {
                log.append(LineAddr::new(l));
            }
            let run = log.read_from(start, n);
            for (i, line) in run.iter().enumerate() {
                prop_assert_eq!(Some(*line), log.get(start + i as u64));
            }
        }
    }
}
