//! Single-table, fixed-prefetch-depth correlation prefetchers.
//!
//! This family models the prior-work designs the paper contrasts with STMS:
//! a set-associative correlation table whose entries store a *fixed-length*
//! sequence of successor addresses (three to six in EBCP \[6\], ULMT \[23\] and
//! similar designs). A single lookup can prefetch at most `depth` blocks, so
//! long temporal streams are fragmented into many lookups (§5.4 and Figure 6,
//! right). The table can be placed on-chip (idealized, no meta-data traffic)
//! or off-chip (each lookup/update costs main-memory accesses), which is how
//! the EBCP-like and ULMT-like baselines of Figure 1 (right) are modelled.

use stms_mem::{DramModel, Prefetcher, StreamChunk, TrafficClass};
use stms_types::{CoreId, Cycle, LineAddr};

/// Where the correlation table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TablePlacement {
    /// Idealized on-chip table: zero lookup latency, no meta-data traffic.
    OnChip,
    /// Main-memory table: each lookup and each update cost whole-cache-line
    /// accesses at low priority.
    OffChip {
        /// Memory accesses per predictor lookup.
        lookup_accesses: u32,
        /// Memory accesses per table update (read-modify-write).
        update_accesses: u32,
    },
}

// Stable fingerprint so fixed-depth design points can key on-disk memoized
// results.
impl stms_types::Fingerprintable for TablePlacement {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        match *self {
            TablePlacement::OnChip => fp.write_u8(0),
            TablePlacement::OffChip {
                lookup_accesses,
                update_accesses,
            } => {
                fp.write_u8(1);
                fp.write_u32(lookup_accesses);
                fp.write_u32(update_accesses);
            }
        }
    }
}

/// Configuration of a fixed-depth correlation prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedDepthConfig {
    /// Number of cores.
    pub cores: usize,
    /// Total number of correlation-table entries.
    pub entries: usize,
    /// Table associativity.
    pub associativity: usize,
    /// Successor addresses stored per entry (the prefetch depth).
    pub depth: usize,
    /// Table placement.
    pub placement: TablePlacement,
}

impl stms_types::Fingerprintable for FixedDepthConfig {
    fn fingerprint_into(&self, fp: &mut stms_types::Fingerprinter) {
        let FixedDepthConfig {
            cores,
            entries,
            associativity,
            depth,
            placement,
        } = self;
        fp.write_str("FixedDepthConfig/v1");
        fp.write_usize(*cores);
        fp.write_usize(*entries);
        fp.write_usize(*associativity);
        fp.write_usize(*depth);
        placement.fingerprint_into(fp);
    }
}

impl FixedDepthConfig {
    /// An EBCP-like configuration: six-deep entries in main memory, one
    /// memory access per lookup and a read-modify-write (three accesses,
    /// as published) per update.
    pub fn ebcp_like(cores: usize) -> Self {
        FixedDepthConfig {
            cores,
            entries: 1 << 17,
            associativity: 8,
            depth: 6,
            placement: TablePlacement::OffChip {
                lookup_accesses: 1,
                update_accesses: 3,
            },
        }
    }

    /// A ULMT-like configuration: four-deep entries in main memory, one
    /// access per lookup, three per update.
    pub fn ulmt_like(cores: usize) -> Self {
        FixedDepthConfig {
            cores,
            entries: 1 << 17,
            associativity: 8,
            depth: 4,
            placement: TablePlacement::OffChip {
                lookup_accesses: 1,
                update_accesses: 3,
            },
        }
    }

    /// An idealized on-chip table with the given depth, used for the
    /// prefetch-depth sweep of Figure 6 (right) where only the fragmentation
    /// effect of bounded depth should be visible.
    pub fn on_chip_with_depth(cores: usize, depth: usize) -> Self {
        FixedDepthConfig {
            cores,
            entries: 1 << 20,
            associativity: 16,
            depth,
            placement: TablePlacement::OnChip,
        }
    }
}

impl Default for FixedDepthConfig {
    fn default() -> Self {
        FixedDepthConfig::ebcp_like(4)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tag: LineAddr,
    successors: Vec<LineAddr>,
    lru: u64,
}

/// Counters describing fixed-depth prefetcher behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedDepthStats {
    /// Predictor lookups performed (trigger events).
    pub lookups: u64,
    /// Lookups that found an entry.
    pub lookup_hits: u64,
    /// Table updates performed.
    pub updates: u64,
}

/// A single-table correlation prefetcher with bounded prefetch depth.
///
/// # Example
///
/// ```
/// use stms_prefetch::{FixedDepthConfig, FixedDepthPrefetcher};
/// use stms_mem::{DramModel, Prefetcher, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let cfg = FixedDepthConfig::on_chip_with_depth(1, 2);
/// let mut pf = FixedDepthPrefetcher::new(cfg);
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let core = CoreId::new(0);
/// for l in [1u64, 2, 3, 4] {
///     pf.record(core, LineAddr::new(l), false, Cycle::ZERO, &mut dram);
/// }
/// let chunk = pf.on_trigger(core, LineAddr::new(1), Cycle::ZERO, &mut dram).unwrap();
/// // Depth 2: only two successors can be prefetched per lookup.
/// assert_eq!(chunk.addresses, vec![LineAddr::new(2), LineAddr::new(3)]);
/// ```
#[derive(Debug)]
pub struct FixedDepthPrefetcher {
    cfg: FixedDepthConfig,
    sets: Vec<Vec<Entry>>,
    /// Per-core trailing window of recent misses used to fill entries: the
    /// entry for a miss M receives the next `depth` misses that follow M.
    recent: Vec<Vec<LineAddr>>,
    clock: u64,
    stats: FixedDepthStats,
}

impl FixedDepthPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (entries not a multiple of
    /// associativity, or a non-power-of-two set count).
    pub fn new(cfg: FixedDepthConfig) -> Self {
        assert!(cfg.associativity > 0 && cfg.entries.is_multiple_of(cfg.associativity));
        let sets = cfg.entries / cfg.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.depth > 0, "depth must be non-zero");
        FixedDepthPrefetcher {
            cfg,
            sets: vec![Vec::new(); sets],
            recent: vec![Vec::new(); cfg.cores],
            clock: 0,
            stats: FixedDepthStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FixedDepthStats {
        self.stats
    }

    /// The configured prefetch depth.
    pub fn depth(&self) -> usize {
        self.cfg.depth
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    fn charge_meta(
        &self,
        accesses: u32,
        now: Cycle,
        dram: &mut DramModel,
        class: TrafficClass,
    ) -> Cycle {
        let mut done = now;
        for _ in 0..accesses {
            done = dram.access(class, 64, done);
        }
        done
    }

    /// Appends `successor` to the entry for `trigger`, creating it if needed.
    fn append_successor(&mut self, trigger: LineAddr, successor: LineAddr) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let depth = self.cfg.depth;
        let set_idx = self.set_of(trigger);
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.tag == trigger) {
            e.lru = clock;
            if e.successors.len() < depth {
                e.successors.push(successor);
            }
            return;
        }
        let entry = Entry {
            tag: trigger,
            successors: vec![successor],
            lru: clock,
        };
        if set.len() < assoc {
            set.push(entry);
        } else {
            let victim = set.iter_mut().min_by_key(|e| e.lru).expect("assoc > 0");
            *victim = entry;
        }
    }
}

impl Prefetcher for FixedDepthPrefetcher {
    fn name(&self) -> &'static str {
        match self.cfg.placement {
            TablePlacement::OnChip => "fixed-depth-onchip",
            TablePlacement::OffChip { .. } => "fixed-depth-offchip",
        }
    }

    fn on_trigger(
        &mut self,
        _core: CoreId,
        line: LineAddr,
        now: Cycle,
        dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        self.stats.lookups += 1;
        let ready_at = match self.cfg.placement {
            TablePlacement::OnChip => now,
            TablePlacement::OffChip {
                lookup_accesses, ..
            } => self.charge_meta(lookup_accesses, now, dram, TrafficClass::MetaLookup),
        };
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(line);
        let entry = self.sets[set_idx].iter_mut().find(|e| e.tag == line)?;
        entry.lru = clock;
        let addresses = entry.successors.clone();
        if addresses.is_empty() {
            return None;
        }
        self.stats.lookup_hits += 1;
        Some(StreamChunk {
            addresses,
            ready_at,
        })
    }

    fn next_chunk(&mut self, _core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
        // The defining limitation of single-table designs: a lookup yields at
        // most `depth` addresses and the stream cannot be extended.
        StreamChunk::empty(now)
    }

    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        _prefetched: bool,
        now: Cycle,
        dram: &mut DramModel,
    ) {
        // Feed this miss into the entries of the preceding `depth` misses.
        let window: Vec<LineAddr> = self.recent[core.index()].clone();
        for &trigger in &window {
            self.append_successor(trigger, line);
        }
        // Update traffic: one table update per recorded miss (read-modify-write
        // of the trigger entry) for off-chip placements.
        self.stats.updates += 1;
        if let TablePlacement::OffChip {
            update_accesses, ..
        } = self.cfg.placement
        {
            self.charge_meta(update_accesses, now, dram, TrafficClass::MetaUpdate);
        }
        let recent = &mut self.recent[core.index()];
        recent.push(line);
        if recent.len() > self.cfg.depth {
            recent.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn record_seq(p: &mut FixedDepthPrefetcher, core: u16, lines: &[u64], dram: &mut DramModel) {
        for &l in lines {
            p.record(
                CoreId::new(core),
                LineAddr::new(l),
                false,
                Cycle::ZERO,
                dram,
            );
        }
    }

    #[test]
    fn depth_limits_predicted_sequence() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::on_chip_with_depth(1, 3));
        let mut d = dram();
        record_seq(&mut p, 0, &[1, 2, 3, 4, 5, 6, 7], &mut d);
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(
            c.addresses,
            vec![LineAddr::new(2), LineAddr::new(3), LineAddr::new(4)]
        );
        assert!(p.next_chunk(CoreId::new(0), Cycle::ZERO, &mut d).is_empty());
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn on_chip_lookup_is_free_and_immediate() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::on_chip_with_depth(1, 2));
        let mut d = dram();
        record_seq(&mut p, 0, &[1, 2, 3], &mut d);
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::new(55), &mut d)
            .unwrap();
        assert_eq!(c.ready_at, Cycle::new(55));
        assert_eq!(d.traffic().total(), 0);
        assert_eq!(p.name(), "fixed-depth-onchip");
    }

    #[test]
    fn off_chip_lookup_and_update_cost_memory_traffic() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::ebcp_like(1));
        let mut d = dram();
        record_seq(&mut p, 0, &[1, 2, 3], &mut d);
        assert_eq!(
            d.traffic().meta_update,
            3 * 3 * 64,
            "3 updates x 3 accesses x 64B"
        );
        let before = d.traffic().meta_lookup;
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::new(0), &mut d)
            .unwrap();
        assert!(
            c.ready_at >= Cycle::new(180),
            "off-chip lookup takes at least one DRAM latency"
        );
        assert_eq!(d.traffic().meta_lookup, before + 64);
        assert_eq!(p.name(), "fixed-depth-offchip");
    }

    #[test]
    fn unknown_trigger_returns_none_but_still_counts_lookup() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::on_chip_with_depth(1, 2));
        let mut d = dram();
        assert!(p
            .on_trigger(CoreId::new(0), LineAddr::new(9), Cycle::ZERO, &mut d)
            .is_none());
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().lookup_hits, 0);
    }

    #[test]
    fn recurrence_with_same_successors_is_predicted() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::on_chip_with_depth(1, 4));
        let mut d = dram();
        // The stream A B C D recurs; the entry for A accumulates B C D.
        record_seq(&mut p, 0, &[10, 11, 12, 13, 99, 10, 11, 12, 13], &mut d);
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(10), Cycle::ZERO, &mut d)
            .unwrap();
        assert!(c.addresses.starts_with(&[
            LineAddr::new(11),
            LineAddr::new(12),
            LineAddr::new(13)
        ]));
    }

    #[test]
    fn per_core_windows_do_not_mix() {
        let mut p = FixedDepthPrefetcher::new(FixedDepthConfig::on_chip_with_depth(2, 2));
        let mut d = dram();
        p.record(CoreId::new(0), LineAddr::new(1), false, Cycle::ZERO, &mut d);
        p.record(
            CoreId::new(1),
            LineAddr::new(50),
            false,
            Cycle::ZERO,
            &mut d,
        );
        p.record(CoreId::new(0), LineAddr::new(2), false, Cycle::ZERO, &mut d);
        let c = p
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(c.addresses, vec![LineAddr::new(2)]);
        assert!(p
            .on_trigger(CoreId::new(1), LineAddr::new(50), Cycle::ZERO, &mut d)
            .is_none());
    }

    #[test]
    fn presets_have_expected_shapes() {
        let e = FixedDepthConfig::ebcp_like(4);
        let u = FixedDepthConfig::ulmt_like(4);
        assert_eq!(e.depth, 6);
        assert_eq!(u.depth, 4);
        assert!(matches!(e.placement, TablePlacement::OffChip { .. }));
        assert_eq!(FixedDepthConfig::default(), FixedDepthConfig::ebcp_like(4));
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_panics() {
        let mut cfg = FixedDepthConfig::on_chip_with_depth(1, 1);
        cfg.depth = 0;
        let _ = FixedDepthPrefetcher::new(cfg);
    }
}
