//! The idealized temporal memory streaming prefetcher (TMS) used as the
//! upper bound in the paper (§5.2).
//!
//! The idealized prefetcher records the off-chip miss sequence of each core
//! in a "magic" on-chip history buffer with zero-latency, infinite-bandwidth
//! lookup, and maps every miss address to its most recent occurrence through
//! an index with either unbounded or LRU-bounded capacity (the bounded
//! variant backs the correlation-table-entries sweep of Figure 1, left).

use crate::history::HistoryLog;
use crate::lru_index::LruIndex;
use std::collections::HashMap;
use stms_mem::{DramModel, Prefetcher, StreamChunk};
use stms_types::{CoreId, Cycle, LineAddr};

/// Configuration of the idealized TMS prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealTmsConfig {
    /// Number of cores (one history log per core).
    pub cores: usize,
    /// History entries retained per core.
    pub history_entries_per_core: usize,
    /// Bound on index entries (`None` = unbounded, the idealized setting).
    pub index_entries: Option<usize>,
    /// Number of addresses handed to the stream engine per chunk.
    pub chunk_size: usize,
}

impl Default for IdealTmsConfig {
    fn default() -> Self {
        IdealTmsConfig {
            cores: 4,
            history_entries_per_core: 1 << 22,
            index_entries: None,
            chunk_size: 32,
        }
    }
}

/// Counters describing idealized-prefetcher behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealTmsStats {
    /// Trigger events (off-chip read misses presented to the predictor).
    pub triggers: u64,
    /// Triggers for which the index held a pointer.
    pub index_hits: u64,
    /// Addresses recorded into the history.
    pub recorded: u64,
}

/// Cursor into another (or the same) core's history, used to keep following a
/// stream across chunks.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    src_core: usize,
    next_pos: u64,
}

/// The idealized temporal streaming prefetcher.
///
/// # Example
///
/// ```
/// use stms_prefetch::{IdealTms, IdealTmsConfig};
/// use stms_mem::{DramModel, Prefetcher, SystemConfig};
/// use stms_types::{CoreId, Cycle, LineAddr};
///
/// let mut tms = IdealTms::new(IdealTmsConfig { cores: 1, ..Default::default() });
/// let mut dram = DramModel::new(SystemConfig::hpca09_baseline().dram);
/// let core = CoreId::new(0);
/// // First occurrence of the stream A B C.
/// for l in [1u64, 2, 3] {
///     tms.record(core, LineAddr::new(l), false, Cycle::ZERO, &mut dram);
/// }
/// // On the recurrence of A, the predictor streams B and C.
/// let chunk = tms.on_trigger(core, LineAddr::new(1), Cycle::ZERO, &mut dram).unwrap();
/// assert_eq!(chunk.addresses, vec![LineAddr::new(2), LineAddr::new(3)]);
/// ```
#[derive(Debug)]
pub struct IdealTms {
    cfg: IdealTmsConfig,
    histories: Vec<HistoryLog>,
    /// Unbounded index (used when `index_entries` is `None`).
    index_unbounded: HashMap<LineAddr, u64>,
    /// Bounded LRU index (used when `index_entries` is `Some`).
    index_bounded: Option<LruIndex>,
    cursors: Vec<Option<Cursor>>,
    stats: IdealTmsStats,
}

impl IdealTms {
    /// Creates an idealized prefetcher.
    pub fn new(cfg: IdealTmsConfig) -> Self {
        assert!(cfg.cores > 0, "cores must be non-zero");
        IdealTms {
            cfg,
            histories: (0..cfg.cores)
                .map(|_| HistoryLog::new(cfg.history_entries_per_core))
                .collect(),
            index_unbounded: HashMap::new(),
            index_bounded: cfg.index_entries.map(LruIndex::new),
            cursors: vec![None; cfg.cores],
            stats: IdealTmsStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> IdealTmsStats {
        self.stats
    }

    /// Number of index entries currently stored.
    pub fn index_len(&self) -> usize {
        match &self.index_bounded {
            Some(idx) => idx.len(),
            None => self.index_unbounded.len(),
        }
    }

    fn encode(core: usize, pos: u64) -> u64 {
        (core as u64) << 48 | pos
    }

    fn decode(value: u64) -> (usize, u64) {
        ((value >> 48) as usize, value & ((1 << 48) - 1))
    }

    fn index_insert(&mut self, line: LineAddr, core: usize, pos: u64) {
        let value = Self::encode(core, pos);
        match &mut self.index_bounded {
            Some(idx) => {
                idx.insert(line, value);
            }
            None => {
                self.index_unbounded.insert(line, value);
            }
        }
    }

    fn index_get(&mut self, line: LineAddr) -> Option<(usize, u64)> {
        let value = match &mut self.index_bounded {
            Some(idx) => idx.get(line),
            None => self.index_unbounded.get(&line).copied(),
        }?;
        Some(Self::decode(value))
    }

    fn read_chunk(&mut self, core: CoreId) -> Vec<LineAddr> {
        let Some(cursor) = self.cursors[core.index()] else {
            return Vec::new();
        };
        let chunk = self.histories[cursor.src_core].read_from(cursor.next_pos, self.cfg.chunk_size);
        self.cursors[core.index()] = Some(Cursor {
            src_core: cursor.src_core,
            next_pos: cursor.next_pos + chunk.len() as u64,
        });
        chunk
    }
}

impl Prefetcher for IdealTms {
    fn name(&self) -> &'static str {
        if self.cfg.index_entries.is_some() {
            "ideal-tms-bounded"
        } else {
            "ideal-tms"
        }
    }

    fn on_trigger(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        _dram: &mut DramModel,
    ) -> Option<StreamChunk> {
        self.stats.triggers += 1;
        let (src_core, pos) = self.index_get(line)?;
        self.stats.index_hits += 1;
        // Follow the sequence of misses that followed `line` last time.
        self.cursors[core.index()] = Some(Cursor {
            src_core,
            next_pos: pos + 1,
        });
        let addresses = self.read_chunk(core);
        if addresses.is_empty() {
            self.cursors[core.index()] = None;
            return None;
        }
        Some(StreamChunk {
            addresses,
            ready_at: now,
        })
    }

    fn next_chunk(&mut self, core: CoreId, now: Cycle, _dram: &mut DramModel) -> StreamChunk {
        let addresses = self.read_chunk(core);
        StreamChunk {
            addresses,
            ready_at: now,
        }
    }

    fn record(
        &mut self,
        core: CoreId,
        line: LineAddr,
        _prefetched: bool,
        _now: Cycle,
        _dram: &mut DramModel,
    ) {
        self.stats.recorded += 1;
        let pos = self.histories[core.index()].append(line);
        self.index_insert(line, core.index(), pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stms_mem::SystemConfig;

    fn dram() -> DramModel {
        DramModel::new(SystemConfig::hpca09_baseline().dram)
    }

    fn record_seq(tms: &mut IdealTms, core: CoreId, lines: &[u64]) {
        let mut d = dram();
        for &l in lines {
            tms.record(core, LineAddr::new(l), false, Cycle::ZERO, &mut d);
        }
    }

    #[test]
    fn trigger_without_history_finds_nothing() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 2,
            ..Default::default()
        });
        let mut d = dram();
        assert!(tms
            .on_trigger(CoreId::new(0), LineAddr::new(5), Cycle::ZERO, &mut d)
            .is_none());
        assert_eq!(tms.stats().triggers, 1);
        assert_eq!(tms.stats().index_hits, 0);
    }

    #[test]
    fn stream_is_replayed_after_recording() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 1,
            chunk_size: 2,
            ..Default::default()
        });
        record_seq(&mut tms, CoreId::new(0), &[10, 20, 30, 40, 50]);
        let mut d = dram();
        let chunk = tms
            .on_trigger(CoreId::new(0), LineAddr::new(10), Cycle::new(7), &mut d)
            .expect("index hit");
        assert_eq!(chunk.addresses, vec![LineAddr::new(20), LineAddr::new(30)]);
        assert_eq!(
            chunk.ready_at,
            Cycle::new(7),
            "idealized lookup has zero latency"
        );
        // Further chunks continue the stream until the history ends.
        let c2 = tms.next_chunk(CoreId::new(0), Cycle::new(8), &mut d);
        assert_eq!(c2.addresses, vec![LineAddr::new(40), LineAddr::new(50)]);
        let c3 = tms.next_chunk(CoreId::new(0), Cycle::new(9), &mut d);
        assert!(c3.is_empty());
        // No meta-data traffic for the idealized design.
        assert_eq!(d.traffic().total(), 0);
    }

    #[test]
    fn index_points_to_most_recent_occurrence() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 1,
            ..Default::default()
        });
        // A appears twice with different successors; the later one wins.
        record_seq(&mut tms, CoreId::new(0), &[1, 2, 3, 1, 7, 8]);
        let mut d = dram();
        let chunk = tms
            .on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(chunk.addresses[0], LineAddr::new(7));
    }

    #[test]
    fn cross_core_streams_are_found_via_shared_index() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 2,
            ..Default::default()
        });
        record_seq(&mut tms, CoreId::new(0), &[100, 101, 102, 103]);
        let mut d = dram();
        // Core 1 misses on an address recorded by core 0.
        let chunk = tms
            .on_trigger(CoreId::new(1), LineAddr::new(100), Cycle::ZERO, &mut d)
            .unwrap();
        assert_eq!(chunk.addresses[0], LineAddr::new(101));
    }

    #[test]
    fn bounded_index_forgets_old_correlations() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 1,
            index_entries: Some(4),
            ..Default::default()
        });
        record_seq(&mut tms, CoreId::new(0), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut d = dram();
        assert!(
            tms.on_trigger(CoreId::new(0), LineAddr::new(1), Cycle::ZERO, &mut d)
                .is_none(),
            "entry for 1 should have been evicted from a 4-entry index"
        );
        assert!(tms
            .on_trigger(CoreId::new(0), LineAddr::new(7), Cycle::ZERO, &mut d)
            .is_some());
        assert!(tms.index_len() <= 4);
        assert_eq!(tms.name(), "ideal-tms-bounded");
    }

    #[test]
    fn unbounded_name_and_stats() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 1,
            ..Default::default()
        });
        assert_eq!(tms.name(), "ideal-tms");
        record_seq(&mut tms, CoreId::new(0), &[1, 2]);
        assert_eq!(tms.stats().recorded, 2);
        assert_eq!(tms.index_len(), 2);
    }

    #[test]
    fn trigger_at_end_of_history_returns_none() {
        let mut tms = IdealTms::new(IdealTmsConfig {
            cores: 1,
            ..Default::default()
        });
        record_seq(&mut tms, CoreId::new(0), &[1, 2, 3]);
        let mut d = dram();
        // 3 is the last recorded miss: there is no successor yet.
        assert!(tms
            .on_trigger(CoreId::new(0), LineAddr::new(3), Cycle::ZERO, &mut d)
            .is_none());
    }
}
