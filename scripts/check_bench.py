#!/usr/bin/env python3
"""Gate bench regressions between two `STMS_BENCH_JSON` artifacts.

  check_bench.py BASELINE FRESH [--threshold PCT]

Both files are the flat `{label: nanoseconds-or-bytes}` documents the
`stms-bench` harness writes (medians over its sample loop). The gate:

  * every label in BASELINE must still exist in FRESH — a silently
    dropped bench can never hide a regression;
  * a FRESH value may exceed its BASELINE value by at most PCT percent
    (default 25) — benches are medians, so the margin only has to absorb
    machine-to-machine noise, not outlier samples;
  * labels only in FRESH are allowed (and listed): new benches land in
    the same PR as the code they measure, before any baseline knows them.

Improvements of any size pass. Exits nonzero naming every violation, not
just the first, so one CI run shows the whole damage.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or not doc:
        sys.exit(f"check_bench: {path}: expected a non-empty JSON object")
    for label, value in doc.items():
        if not isinstance(value, int) or value <= 0:
            sys.exit(f"check_bench: {path}: {label!r} is not a positive integer")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed bench artifact (old)")
    parser.add_argument("fresh", help="regenerated bench artifact (new)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max allowed regression on an existing label, in percent",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    limit = 1.0 + args.threshold / 100.0

    failures = []
    for label in sorted(baseline):
        if label not in fresh:
            failures.append(f"{label}: present in baseline but missing from fresh run")
            continue
        old, new = baseline[label], fresh[label]
        ratio = new / old
        verdict = "ok"
        if ratio > limit:
            verdict = f"REGRESSION (> +{args.threshold:g}%)"
            failures.append(
                f"{label}: {old} -> {new} ({ratio - 1.0:+.1%}, "
                f"limit +{args.threshold:g}%)"
            )
        print(f"check_bench: {label}: {old} -> {new} ({ratio - 1.0:+.1%}) {verdict}")
    for label in sorted(set(fresh) - set(baseline)):
        print(f"check_bench: {label}: new label ({fresh[label]}), no baseline to gate")

    if failures:
        print(
            f"check_bench: {len(failures)} violation(s):\n  "
            + "\n  ".join(failures),
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"check_bench: {len(baseline)} baseline label(s) within +{args.threshold:g}%")


if __name__ == "__main__":
    main()
