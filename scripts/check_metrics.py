#!/usr/bin/env python3
"""Validate `stms-metrics/v1` snapshots (the files `--metrics-out` writes
and the documents `stms-serve-client --metrics` prints).

Two modes:

  check_metrics.py SNAPSHOT [--require-counter NAME]...
                            [--require-histogram NAME]...
                            [--require-gauge NAME]...
      Structural validation of one snapshot: schema tag, section layout,
      histogram internal consistency (bucket tallies sum to `count`,
      `max` <= `sum`, zero-count histograms are all-zero), plus any
      required counters (value > 0), histograms (count > 0) and gauges
      (present; a gauge may legitimately read zero — e.g. a perfect
      calibration error — so only presence is gated) named on the command
      line — the "nonzero phase timers" gate in CI.

  check_metrics.py --monotone SNAPSHOT SNAPSHOT...
      Asserts a sequence of snapshots taken from ONE process (e.g.
      `--metrics` probes of a live daemon) is monotone: no counter,
      histogram count, or histogram sum ever decreases, and no metric
      vanishes. The registry is cumulative-since-start, so any decrease
      is a bug.

Exits nonzero with a message naming the first violated invariant.
"""

import argparse
import json
import sys

SCHEMA = "stms-metrics/v1"


def fail(message):
    print(f"check_metrics: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing {section!r} object")
    for section in ("counters", "gauges"):
        for name, value in doc[section].items():
            if not isinstance(value, int) or value < 0:
                fail(f"{path}: {section}/{name} is not an unsigned integer")
    for name, hist in doc["histograms"].items():
        for field in ("count", "sum", "max"):
            if not isinstance(hist.get(field), int) or hist[field] < 0:
                fail(f"{path}: histograms/{name}/{field} is not an unsigned integer")
        tally = 0
        for bucket in hist.get("buckets", []):
            if (
                not isinstance(bucket, list)
                or len(bucket) != 2
                or not all(isinstance(v, int) and v >= 0 for v in bucket)
            ):
                fail(f"{path}: histograms/{name} has a malformed bucket: {bucket!r}")
            tally += bucket[1]
        if tally != hist["count"]:
            fail(
                f"{path}: histograms/{name} buckets tally {tally}, "
                f"count says {hist['count']}"
            )
        if hist["count"] == 0 and (hist["sum"] or hist["max"]):
            fail(f"{path}: histograms/{name} is empty but has sum/max")
        if hist["count"] > 0 and hist["max"] > hist["sum"]:
            fail(f"{path}: histograms/{name} max {hist['max']} exceeds sum {hist['sum']}")
    return doc


def check_required(path, doc, counters, histograms, gauges):
    for name in counters:
        if doc["counters"].get(name, 0) <= 0:
            fail(f"{path}: required counter {name!r} is missing or zero")
    for name in histograms:
        hist = doc["histograms"].get(name)
        if hist is None or hist["count"] <= 0:
            fail(f"{path}: required histogram {name!r} is missing or empty")
    for name in gauges:
        if name not in doc["gauges"]:
            fail(f"{path}: required gauge {name!r} is missing")


def check_monotone(paths, docs):
    for (before_path, before), (after_path, after) in zip(
        zip(paths, docs), zip(paths[1:], docs[1:])
    ):
        where = f"{before_path} -> {after_path}"
        for name, value in before["counters"].items():
            later = after["counters"].get(name)
            if later is None:
                fail(f"{where}: counter {name!r} vanished")
            if later < value:
                fail(f"{where}: counter {name!r} decreased {value} -> {later}")
        for name, hist in before["histograms"].items():
            later = after["histograms"].get(name)
            if later is None:
                fail(f"{where}: histogram {name!r} vanished")
            for field in ("count", "sum"):
                if later[field] < hist[field]:
                    fail(
                        f"{where}: histogram {name!r} {field} decreased "
                        f"{hist[field]} -> {later[field]}"
                    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="+", help="snapshot JSON files, in order")
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter that must be present with a nonzero value",
    )
    parser.add_argument(
        "--require-histogram",
        action="append",
        default=[],
        metavar="NAME",
        help="histogram that must be present with a nonzero count",
    )
    parser.add_argument(
        "--require-gauge",
        action="append",
        default=[],
        metavar="NAME",
        help="gauge that must be present (any value, including zero)",
    )
    parser.add_argument(
        "--monotone",
        action="store_true",
        help="assert counters and histograms never decrease across the sequence",
    )
    args = parser.parse_args()

    docs = [load(path) for path in args.snapshots]
    for path, doc in zip(args.snapshots, docs):
        check_required(
            path, doc, args.require_counter, args.require_histogram, args.require_gauge
        )
    if args.monotone:
        if len(docs) < 2:
            fail("--monotone needs at least two snapshots")
        check_monotone(args.snapshots, docs)
    print(f"check_metrics: {len(docs)} snapshot(s) ok")


if __name__ == "__main__":
    main()
