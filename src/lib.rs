//! Umbrella crate for the STMS reproduction. Re-exports every workspace crate.
pub use stms_core as core;
pub use stms_mem as mem;
pub use stms_obs as obs;
pub use stms_prefetch as prefetch;
pub use stms_serve as serve;
pub use stms_sim as sim;
pub use stms_stats as stats;
pub use stms_types as types;
pub use stms_workloads as workloads;
